"""Driver behind ``python -m repro compile``.

Compiles seed cases (one, or ``all`` for the 12 seed programs) through
the fused-kernel lowering pipeline, prints what was applied and what was
refused, and optionally:

* ``--opportunities FILE`` — consume a ``repro deps`` artifact instead
  of running the dataflow engine in-process (hash-gated: a stale
  artifact is an error, not a fallback);
* ``--plan FILE`` — honour a ``repro tune`` plan for launch choices,
  including the shared configuration of fused launches;
* ``--bench FILE`` — wall-clock interpreted vs compiled and write the
  ``BENCH_step.json`` document.

Exit status: 0 when every target compiled and verified, 1 on a
compilation/verification failure, 2 on a stale or malformed artifact.
"""

from __future__ import annotations

import json

from repro.compile.bench import DEFAULT_REPEATS, bench_document, measure_case
from repro.compile.compiler import (
    CompiledPipeline,
    CompileRequest,
    _default_runtime_factory,
    compile_case,
)
from repro.core.config import GPUOptions
from repro.utils.errors import CompileError, StaleArtifactError

__all__ = ["run_compile_command", "compile_targets"]


def compile_targets(args) -> list[tuple[str, CompileRequest]]:
    """Resolve the CLI namespace into ``(label, request)`` targets."""
    nt = int(getattr(args, "nt", 24) or 24)
    modes = (
        ("modeling", "rtm")
        if args.mode == "both" else (args.mode,)
    )
    case = args.case
    if case.lower() == "all":
        from repro.analyze.cli import _INVENTORY

        return [
            (
                f"{physics}{ndim}d ({mode})",
                CompileRequest.from_case(f"{physics}{ndim}d", mode, nt=nt),
            )
            for physics, ndim in _INVENTORY
            for mode in ("modeling", "rtm")
        ]
    return [
        (f"{case} ({mode})", CompileRequest.from_case(case, mode, nt=nt))
        for mode in modes
    ]


def _compile_one(request: CompileRequest, artifact, plan) -> CompiledPipeline:
    return compile_case(request, plan=plan, artifact=artifact)


def _describe(label: str, compiled: CompiledPipeline, bench: dict | None) -> dict:
    doc = {
        "case": label,
        "name": compiled.request.name,
        "program_sha": compiled.program_sha,
        "verified": compiled.verified,
        "applied": [a.to_json() for a in compiled.applied],
        "skipped": {
            reason: count
            for reason, count in sorted(_skip_counts(compiled).items())
        },
        "launches_per_step": compiled.launches_per_step(),
    }
    if bench is not None:
        doc["bench"] = bench
    return doc


def _skip_counts(compiled: CompiledPipeline) -> dict[str, int]:
    out: dict[str, int] = {}
    for _, _, reason in compiled.skipped:
        out[reason] = out.get(reason, 0) + 1
    return out


#: stable ledger keys for the selection gauntlet's refusal reasons; a
#: reason outside this table (dynamic text) is sanitized instead
_SKIP_KEYS = {
    "spans a phase boundary": "phase_boundary",
    "conflicts with an already-selected opportunity": "conflict",
    "periodic duplicate of a selected template offset": "periodic_duplicate",
    "not verified by the dataflow engine": "unverified",
    "failed the replay re-proof": "replay_refused",
    "refused by the translation validator": "validator_refused",
}


def _skip_metric_key(reason: str) -> str:
    key = _SKIP_KEYS.get(reason)
    if key is None:
        key = "".join(
            c if c.isalnum() else "_" for c in reason.lower()
        ).strip("_")
    return f"compile_skipped_{key}"


def _selection_metrics(compiled: CompiledPipeline) -> dict[str, float]:
    """Per-run selection outcome metrics (refusals by reason, plus the
    cross-phase admissions the translation validator unlocked)."""
    metrics = {
        _skip_metric_key(reason): float(count)
        for reason, count in _skip_counts(compiled).items()
    }
    metrics["applied_cross_phase"] = float(
        sum(1 for a in compiled.applied if "->" in a.phase)
    )
    return metrics


def _print_target(doc: dict) -> None:
    title = f"compile {doc['case']}"
    print(title)
    print("-" * len(title))
    launches = doc["launches_per_step"]
    print(
        f"  verified: {doc['verified']}  sha {doc['program_sha'][:12]}…  "
        f"launches/step {launches['interpreted']} -> {launches['compiled']}"
    )
    for a in doc["applied"]:
        extra = ""
        if a["modelled"]:
            extra = (
                f"  (model: {a['modelled']['saved_seconds']:.3e} s/launch saved)"
            )
        what = "+".join(a["kernels"]) if a["kernels"] else (a["var"] or "")
        print(f"  applied {a['kind']} [{a['phase']}] {what}{extra}")
    for reason, count in doc["skipped"].items():
        print(f"  skipped {count}: {reason}")
    if "bench" in doc:
        b = doc["bench"]
        print(
            f"  wall-clock/step: interpreted {b['interpreted_step_s']:.3e} s, "
            f"compiled {b['compiled_step_s']:.3e} s "
            f"(speedup {b['speedup']:.2f}x)"
        )


def run_compile_command(args) -> int:
    """``python -m repro compile`` entry point (argparse namespace in)."""
    from repro.observe.ledger import append_run, ledger_path_from_args
    from repro.observe.runlog import RunLog

    plan = None
    if getattr(args, "plan", None):
        from repro.optim.autotune import load_plan

        plan = load_plan(args.plan)
    artifact = None
    if getattr(args, "opportunities", None):
        with open(args.opportunities, encoding="utf-8") as fh:
            artifact = json.load(fh)
    try:
        targets = compile_targets(args)
    except Exception as exc:  # bad case spelling
        print(f"compile: {exc}")
        return 2
    repeats = int(getattr(args, "repeats", DEFAULT_REPEATS) or DEFAULT_REPEATS)
    want_bench = bool(getattr(args, "bench", None))
    ledger_path = ledger_path_from_args(args)
    docs: list[dict] = []
    bench_cases: dict[str, dict] = {}
    failures = 0
    nt = int(getattr(args, "nt", 24) or 24)
    for label, request in targets:
        runlog = RunLog(
            command="compile", case=label, mode=request.mode, nt=request.nt
        )
        with runlog.activate():
            try:
                compiled = _compile_one(request, artifact, plan)
            except StaleArtifactError as exc:
                print(f"compile {label}: STALE ARTIFACT\n  {exc}")
                return 2
            except CompileError as exc:
                print(f"compile {label}: FAILED\n  {exc}")
                failures += 1
                continue
            bench = None
            if want_bench:
                options = GPUOptions()
                bench = measure_case(
                    request,
                    compiled,
                    options,
                    _default_runtime_factory(options, None),
                    repeats=repeats,
                )
                bench_cases[compiled.request.name] = bench
            metrics = {
                "applied": float(len(compiled.applied)),
                "launches_interpreted": float(
                    compiled.launches_per_step()["interpreted"]
                ),
                "launches_compiled": float(
                    compiled.launches_per_step()["compiled"]
                ),
                **_selection_metrics(compiled),
            }
            if bench is not None:
                metrics["interpreted_step_s"] = bench["interpreted_step_s"]
                metrics["compiled_step_s"] = bench["compiled_step_s"]
            append_run(ledger_path, runlog, metrics, plan=plan)
        docs.append(_describe(label, compiled, bench))
    if want_bench and bench_cases:
        doc = bench_document(
            bench_cases, nt=nt, snap_period=4, repeats=repeats
        )
        with open(args.bench, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if getattr(args, "format", "text") == "json":
        print(json.dumps({"targets": docs}, indent=2))
    else:
        for doc in docs:
            _print_target(doc)
    return 1 if failures else 0
