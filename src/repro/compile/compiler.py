"""The fused-kernel compiler: verified opportunities → an executable step.

This is the front half of :mod:`repro.compile` (the back half —
:mod:`repro.compile.lower` — turns the transformed events into bound
closures).  The pipeline is:

1. **Segmented recording** (:func:`record_segments`) — drive a twin
   runtime + :class:`~repro.analyze.recorder.ProgramRecorder` through
   the exact :func:`~repro.core.pipeline.run_pipeline_modeling` /
   :func:`~repro.core.pipeline.run_pipeline_rtm` schedule, marking which
   event range each phase-method call produced.
2. **Template extraction** — every repeated phase (forward step,
   snapshot, snapshot reload, imaging, backward step) must be
   steady-state: all its slices normalize-identical.  Non-uniform
   schedules (e.g. auto-async queue rotation) are refused.
3. **Selection** (:func:`select_opportunities`) — verified
   :class:`~repro.analyze.dataflow.OptimizationOpportunity` records are
   mapped to template offsets, deduplicated across periodic repeats,
   structurally re-checked, made conflict-free, and each survivor is
   re-proven with :func:`~repro.analyze.dataflow.verify_opportunity`.
4. **Application** — survivors are applied per template with
   :func:`~repro.analyze.dataflow.apply_opportunity`; hoisted updates
   move to a phase prologue that runs once.
5. **Verification gate** (inside :func:`compile_case`) — the compiled
   schedule is replayed faithfully on a fresh twin under a recorder and
   its :func:`~repro.analyze.dataflow.replay_fingerprint` must be
   bitwise-identical to the interpreted program's.  Failure raises
   :class:`~repro.utils.errors.CompileError`; an unverified
   :class:`CompiledPipeline` is never returned.

Artifacts from ``repro deps --opportunities`` are accepted via
``artifact=``; they are schema-validated and matched to the re-recorded
program by :meth:`~repro.analyze.program.DirectiveProgram.sha` —
mismatch raises :class:`~repro.utils.errors.StaleArtifactError` (fail
closed, never "best effort").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.analyze.dataflow import (
    OptimizationOpportunity,
    apply_opportunity,
    find_opportunities,
    replay_fingerprint,
    validate_opportunities,
    verify_opportunity,
)
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.analyze.recorder import ProgramRecorder
from repro.compile.lower import (
    BoundStep,
    LoweredOp,
    WorkloadRegistry,
    bind_ops,
    lower_events,
)
from repro.core.config import GpuTimes, GPUOptions
from repro.utils.errors import (
    CompileError,
    DeviceOutOfMemoryError,
    StaleArtifactError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acc.runtime import Runtime
    from repro.core.pipeline import OffloadPipeline
    from repro.core.platform import Platform
    from repro.optim.autotune import TuningPlan

#: phases in schedule order; the repeated ones must be steady-state
PHASE_ORDER = (
    "allocate", "forward", "snapshot", "swap", "load_snapshot", "imaging",
    "backward", "finalize",
)
REPEATED_PHASES = ("forward", "snapshot", "load_snapshot", "imaging", "backward")

#: which one-shot prologue a hoisted update lands in, per source phase
_PROLOGUE_OF = {
    "forward": "forward_prologue",
    "snapshot": "forward_prologue",
    "load_snapshot": "backward_prologue",
    "imaging": "backward_prologue",
    "backward": "backward_prologue",
}


@dataclass(frozen=True)
class CompileRequest:
    """What to compile: one seed-style case under one schedule shape.

    Mirrors the parameters ``repro deps`` records with, so a request
    compiled with the same ``nt`` hashes to the same
    :meth:`~repro.analyze.program.DirectiveProgram.sha` as the deps
    artifact (that equality is the staleness gate).
    """

    physics: str
    shape: tuple[int, ...]
    mode: str = "rtm"
    nt: int = 24
    snap_period: int = 4
    snapshot_decimate: int = 4
    nreceivers: int = 16
    space_order: int = 8
    boundary_width: int = 8
    pml_variant: str = "restructured"

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def name(self) -> str:
        return f"{self.physics}-{self.ndim}d-{self.mode}"

    @classmethod
    def from_case(cls, case: str, mode: str, nt: int = 24) -> "CompileRequest":
        """Build a request from a seed-case spelling (``iso2d`` ...),
        using the exact recording parameters of ``repro deps``."""
        from repro.analyze.cli import _SHAPES
        from repro.trace.cli import parse_case

        physics, ndim = parse_case(case)
        return cls(
            physics=physics,
            shape=_SHAPES[ndim],
            mode=mode,
            nt=nt,
            space_order=4 if ndim == 3 else 8,
        )


@dataclass(frozen=True)
class Segment:
    """One phase-method call's event range: ``[start, stop)``."""

    phase: str
    start: int
    stop: int

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop


def _normalize(e: AccEvent) -> AccEvent:
    return replace(e, index=0, label=None)


@dataclass
class SegmentedRecording:
    """A recorded program plus the phase boundaries of every event."""

    request: CompileRequest
    program: DirectiveProgram
    segments: list[Segment]
    pipeline: "OffloadPipeline"

    def slices(self, phase: str) -> list[Segment]:
        return [s for s in self.segments if s.phase == phase]

    def segment_of(self, index: int) -> Segment | None:
        for s in self.segments:
            if index in s:
                return s
        return None

    def template(self, phase: str) -> list[AccEvent]:
        """The phase's steady-state event template.

        Raises :class:`CompileError` when the phase's slices are not
        normalize-identical — the schedule is input-dependent and must
        stay with the interpreter.
        """
        slices = self.slices(phase)
        if not slices:
            return []
        events = self.program.events
        first = [
            _normalize(e) for e in events[slices[0].start:slices[0].stop]
        ]
        for s in slices[1:]:
            other = [_normalize(e) for e in events[s.start:s.stop]]
            if other != first:
                raise CompileError(
                    f"phase '{phase}' is not steady-state: slice at event "
                    f"{s.start} differs from the template at event "
                    f"{slices[0].start} (input-dependent schedules cannot "
                    f"be compiled)"
                )
        return events[slices[0].start:slices[0].stop]


def _default_runtime_factory(
    options: GPUOptions, platform: "Platform | None"
) -> Callable[[], "Runtime"]:
    from repro.core.modeling import _build_runtime
    from repro.core.platform import CRAY_K40

    plat = platform if platform is not None else CRAY_K40
    return lambda: _build_runtime(options, plat)


def _twin_pipeline(source: "OffloadPipeline", rt: "Runtime", options: GPUOptions):
    """A shallow twin of ``source`` on a fresh runtime: same workloads and
    inventory, private phase/present bookkeeping, never itself compiled."""
    import copy

    twin = copy.copy(source)
    twin.rt = rt
    twin.options = options
    twin._present_names = []
    twin._phase = "idle"
    return twin


def record_segments(
    request: CompileRequest,
    options: GPUOptions,
    runtime_factory: Callable[[], "Runtime"],
    source_pipeline: "OffloadPipeline | None" = None,
    name: str | None = None,
) -> SegmentedRecording:
    """Record the interpreted schedule with per-phase event boundaries.

    Replays the exact control flow of
    :func:`~repro.core.pipeline.run_pipeline_modeling` /
    :func:`~repro.core.pipeline.run_pipeline_rtm`.  Failures are *not*
    soft here: a known-failure persona raises :class:`CompileError` and
    device OOM propagates (callers map both onto the interpreter's
    ``failed_times`` semantics).
    """
    from repro.core.pipeline import OffloadPipeline

    rt = runtime_factory()
    recorder = ProgramRecorder(name=name or request.name)
    rt.attach_recorder(recorder)
    if source_pipeline is not None:
        pipe = _twin_pipeline(source_pipeline, rt, options)
    else:
        pipe = OffloadPipeline(
            rt,
            request.physics,
            request.shape,
            nreceivers=request.nreceivers,
            space_order=request.space_order,
            boundary_width=request.boundary_width,
            options=options,
            pml_variant=request.pml_variant,
        )
    if request.mode == "rtm":
        tag = f"{pipe.physics}-{pipe.ndim}d-rtm"
        if tag in getattr(rt.compiler, "known_failures", ()):
            raise CompileError(
                f"persona {rt.compiler.name} cannot build {tag} "
                f"(known compiler failure)"
            )
    program = recorder.program
    segments: list[Segment] = []

    def run(phase: str, fn, *args, **kwargs) -> None:
        start = len(program.events)
        fn(*args, **kwargs)
        segments.append(Segment(phase, start, len(program.events)))

    run("allocate", pipe.allocate_forward)
    decimate = 1 if request.mode == "rtm" else request.snapshot_decimate
    for n in range(request.nt):
        run("forward", pipe.forward_step)
        if (n + 1) % request.snap_period == 0:
            run("snapshot", pipe.snapshot_to_host, decimate=decimate)
    if request.mode == "rtm":
        run("swap", pipe.swap_to_backward)
        for n in range(request.nt - 1, -1, -1):
            if (n + 1) % request.snap_period == 0:
                run("load_snapshot", pipe.load_forward_snapshot)
                run("imaging", pipe.imaging_step)
            run("backward", pipe.backward_step)
        run("finalize", pipe.finalize, with_image=options.image_on_gpu)
    else:
        run("finalize", pipe.finalize, with_image=False)
    return SegmentedRecording(
        request=request, program=program, segments=segments, pipeline=pipe
    )


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectedOpportunity:
    """A verified opportunity mapped into one phase template."""

    opportunity: OptimizationOpportunity
    phase: str
    #: anchor positions relative to the template start
    offsets: tuple[int, ...]
    #: for cross-phase fusions admitted by the translation validator:
    #: the adjacent phase holding the second anchor, and that anchor's
    #: offset within the partner phase's template
    cross_phase: str | None = None
    cross_offset: int | None = None


@dataclass
class SelectionResult:
    selected: list[SelectedOpportunity] = field(default_factory=list)
    #: ``(kind, events, reason)`` for every opportunity not taken
    skipped: list[tuple[str, tuple[int, ...], str]] = field(default_factory=list)

    def skip_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for _, _, reason in self.skipped:
            out[reason] = out.get(reason, 0) + 1
        return out


def _structural_reason(
    program: DirectiveProgram, opp: OptimizationOpportunity
) -> str | None:
    """Re-derive the opportunity's legality from program structure alone.

    The artifact's proofs are replayed separately; this check defends
    against malformed or tampered records *before* any replay runs, and
    encodes the hard scheduling rules: a fusion may never cross a
    ``wait`` (some other queue's producer may be ordered by it), and all
    anchors must be the kinds the transform expects.
    """
    events = program.events
    if any(i < 0 or i >= len(events) for i in opp.events + opp.remove_events):
        return "event index out of range"
    if opp.kind == "fuse-computes":
        if len(opp.events) != 2:
            return "fuse-computes needs exactly two anchors"
        a, b = (events[i] for i in opp.events)
        if a.kind != "compute" or b.kind != "compute":
            return "fuse anchor is not a compute"
        if a.queue != b.queue:
            return "fuse anchors on different queues"
        between = events[opp.events[0] + 1:opp.events[1]]
        if any(e.kind == "wait" for e in between):
            return "a wait between the computes orders another queue"
        if any(
            e.kind == "compute" and (e.wait_all or e.wait_on)
            for e in between
        ):
            return "an intervening launch carries wait clauses"
        if set(opp.remove_events) - {opp.events[1]}:
            return "fuse may only remove its second anchor"
        return None
    if opp.kind == "hoist-update":
        if any(events[i].kind != "update" for i in opp.events):
            return "hoist anchor is not an update"
        if opp.insert_at is None or not (0 <= opp.insert_at <= min(opp.events)):
            return "hoist insert point after its first anchor"
        anchors = {(events[i].var, events[i].direction) for i in opp.events}
        if len(anchors) != 1:
            return "hoist anchors disagree on array/direction"
        return None
    if opp.kind == "cancel-update-pair":
        if any(events[i].kind != "update" for i in opp.events):
            return "cancel anchor is not an update"
        if len({events[i].var for i in opp.events}) != 1:
            return "cancel anchors touch different arrays"
        return None
    return f"unknown opportunity kind '{opp.kind}'"


def _cross_phase_candidate(
    recording: SegmentedRecording,
    opp: OptimizationOpportunity,
    seg_a: Segment,
) -> Segment | None:
    """The partner segment of an adjacent-phase fusion, or None.

    A boundary-spanning fusion is a candidate for validator admission
    only under the tight geometry the proofs cover: exactly two compute
    anchors in *adjacent* segments of two *different* repeated phases,
    and that adjacency uniform — every slice of the first phase is
    immediately followed by a slice of the second, so one merged
    template plus one partner-phase variant covers every occurrence.
    """
    if opp.kind != "fuse-computes" or len(opp.events) != 2:
        return None
    ia, ib = opp.events
    if ia not in seg_a or set(opp.remove_events) - {ib}:
        return None
    seg_b = recording.segment_of(ib)
    if seg_b is None or seg_b.start != seg_a.stop:
        return None
    if seg_a.phase == seg_b.phase:
        return None
    if (
        seg_a.phase not in REPEATED_PHASES
        or seg_b.phase not in REPEATED_PHASES
    ):
        return None
    by_start = {s.start: s for s in recording.segments}
    for sa in recording.slices(seg_a.phase):
        sb = by_start.get(sa.stop)
        if sb is None or sb.phase != seg_b.phase:
            return None
    return seg_b


def _cross_phase_selection(
    recording: SegmentedRecording,
    opp: OptimizationOpportunity,
    seg_a: Segment,
    taken_offsets: dict[str, set[int]],
    seen_keys: set[tuple],
    fingerprint,
) -> tuple[SelectedOpportunity | None, str]:
    """Admit one boundary-spanning fusion, or return the skip reason.

    Admission requires the translation validator's static proof *and*
    the replay re-proof on every periodic occurrence pair — the static
    proof is what unlocks the boundary, the replay stays as backstop.
    """
    from repro.analyze.framework import Severity
    from repro.compile.validate import validate_opportunity

    program = recording.program
    seg_b = _cross_phase_candidate(recording, opp, seg_a)
    if seg_b is None:
        return None, "spans a phase boundary"
    ia, ib = opp.events
    off_a, off_b = ia - seg_a.start, ib - seg_b.start
    key = (opp.kind, seg_a.phase, seg_b.phase, off_a, off_b, opp.var)
    if key in seen_keys:
        return None, "periodic duplicate of a selected template offset"
    seen_keys.add(key)
    reason = _structural_reason(program, opp)
    if reason is not None:
        return None, reason
    if (
        off_a in taken_offsets.get(seg_a.phase, set())
        or off_b in taken_offsets.get(seg_b.phase, set())
    ):
        return None, "conflicts with an already-selected opportunity"
    by_start = {s.start: s for s in recording.segments}
    for sa in recording.slices(seg_a.phase):
        sb = by_start[sa.stop]
        inst = replace(
            opp,
            events=(sa.start + off_a, sb.start + off_b),
            remove_events=(sb.start + off_b,),
            insert_at=None,
        )
        if any(
            d.severity >= Severity.ERROR
            for d in validate_opportunity(program, inst)
        ):
            return None, "refused by the translation validator"
        if not verify_opportunity(program, inst, fingerprint()):
            return None, "failed the replay re-proof"
    taken_offsets.setdefault(seg_a.phase, set()).add(off_a)
    taken_offsets.setdefault(seg_b.phase, set()).add(off_b)
    return SelectedOpportunity(
        opportunity=opp,
        phase=seg_a.phase,
        offsets=(off_a,),
        cross_phase=seg_b.phase,
        cross_offset=off_b,
    ), ""


def select_opportunities(
    recording: SegmentedRecording,
    opportunities: list[OptimizationOpportunity],
) -> SelectionResult:
    """Filter opportunities down to the disjoint, re-proven set the
    compiler will apply.

    Order of the gauntlet: verified flag → single-segment locality →
    repeated-phase locality → periodic dedup (template offsets) →
    structural legality → conflict-freedom within the template →
    :func:`~repro.analyze.dataflow.verify_opportunity` replay re-proof.

    Boundary-spanning fusions detour through the translation
    validator's cross-phase admission — and get *first* claim on
    template offsets, since the boundary candidates are exactly the
    ones only the static proof can unlock (a within-phase duplicate of
    the same anchor can always be re-found; the cross-phase one is
    refused forever without the proof).
    """
    program = recording.program
    result = SelectionResult()
    baseline: tuple | None = None
    taken_offsets: dict[str, set[int]] = {}
    seen_keys: set[tuple] = set()
    ordered = sorted(opportunities, key=lambda o: o.events)

    def fingerprint() -> tuple:
        nonlocal baseline
        if baseline is None:
            baseline = replay_fingerprint(program)
        return baseline

    def anchors_of(opp: OptimizationOpportunity) -> tuple[int, ...]:
        return opp.events + tuple(
            i for i in opp.remove_events if i not in opp.events
        )

    done: set[int] = set()
    for pos, opp in enumerate(ordered):
        if not opp.verified:
            continue
        anchors = anchors_of(opp)
        seg = recording.segment_of(anchors[0])
        if seg is None or all(i in seg for i in anchors):
            continue
        sel, reason = _cross_phase_selection(
            recording, opp, seg, taken_offsets, seen_keys, fingerprint
        )
        if sel is None:
            result.skipped.append((opp.kind, opp.events, reason))
        else:
            result.selected.append(sel)
        done.add(pos)

    for pos, opp in enumerate(ordered):
        if pos in done:
            continue

        def skip(reason: str, opp=opp) -> None:
            result.skipped.append((opp.kind, opp.events, reason))

        if not opp.verified:
            skip("not verified by the dataflow engine")
            continue
        anchors = anchors_of(opp)
        seg = recording.segment_of(anchors[0])
        if seg is None or any(i not in seg for i in anchors):
            skip("spans a phase boundary")
            continue
        if seg.phase not in REPEATED_PHASES:
            skip(f"anchored in one-shot phase '{seg.phase}'")
            continue
        offsets = tuple(i - seg.start for i in opp.events)
        key = (opp.kind, seg.phase, offsets, opp.var)
        if key in seen_keys:
            skip("periodic duplicate of a selected template offset")
            continue
        seen_keys.add(key)
        reason = _structural_reason(program, opp)
        if reason is not None:
            skip(reason)
            continue
        touched = set(offsets) | {
            i - seg.start for i in opp.remove_events if i in seg
        }
        taken = taken_offsets.setdefault(seg.phase, set())
        if touched & taken:
            skip("conflicts with an already-selected opportunity")
            continue
        if not verify_opportunity(program, opp, fingerprint()):
            skip("failed the replay re-proof")
            continue
        taken.update(touched)
        result.selected.append(
            SelectedOpportunity(opportunity=opp, phase=seg.phase, offsets=offsets)
        )
    return result


# ----------------------------------------------------------------------
# application
# ----------------------------------------------------------------------
def _mini_program(meta, extents, events: list[AccEvent]) -> DirectiveProgram:
    mini = DirectiveProgram(meta)
    mini.extents = dict(extents)
    for e in events:
        mini.add(e)
    return mini


def apply_to_template(
    template: list[AccEvent],
    selections: list[SelectedOpportunity],
    program: DirectiveProgram,
) -> tuple[list[AccEvent], list[AccEvent]]:
    """Apply the phase's selected opportunities to its template.

    Returns ``(transformed_template, hoisted_events)`` — hoisted updates
    leave the per-iteration template entirely and run once in the phase
    prologue.  Application goes through the same
    :func:`~repro.analyze.dataflow.apply_opportunity` the proofs were
    checked with, in descending anchor order so earlier offsets stay
    valid as later events are removed.
    """
    mini = _mini_program(program.meta, program.extents, template)
    hoisted: list[AccEvent] = []
    ordered = sorted(selections, key=lambda s: -s.offsets[0])
    for sel in ordered:
        opp = sel.opportunity
        if opp.kind == "fuse-computes":
            local = replace(
                opp, events=sel.offsets, remove_events=(sel.offsets[1],),
                insert_at=None,
            )
            mini = apply_opportunity(mini, local)
        elif opp.kind == "hoist-update":
            hoisted.append(mini.events[sel.offsets[0]])
            # removal only: the kept update moves to the phase prologue,
            # so nothing is re-inserted into the per-iteration template
            local = replace(
                opp, kind="cancel-update-pair", events=sel.offsets,
                remove_events=sel.offsets, insert_at=None,
            )
            mini = apply_opportunity(mini, local)
        else:  # cancel-update-pair
            local = replace(
                opp, events=sel.offsets, remove_events=sel.offsets,
                insert_at=None,
            )
            mini = apply_opportunity(mini, local)
    return list(mini.events), hoisted


def _shifted_offset(
    offset: int, selections: list[SelectedOpportunity]
) -> int:
    """Map an original template offset to its position after the phase's
    within-phase selections removed events (fuse drops its second
    anchor; hoist/cancel drop all of theirs)."""
    removed: set[int] = set()
    for s in selections:
        if s.cross_phase is not None:
            continue
        if s.opportunity.kind == "fuse-computes":
            removed.add(s.offsets[1])
        else:
            removed.update(s.offsets)
    return offset - sum(1 for r in removed if r < offset)


def _apply_cross_phase(
    transformed: dict[str, list[AccEvent]],
    by_phase: dict[str, list[SelectedOpportunity]],
    cross: list[SelectedOpportunity],
) -> dict[tuple[str, str], str]:
    """Merge each cross-phase fusion's partner launch into the first
    phase's anchor and carve the partner phase's variant step without it.

    The variant (``"{pb}@after:{pa}"``) replaces the partner phase's
    step only when it immediately follows the first phase — exactly the
    adjacency the selection proved uniform.
    """
    from repro.analyze.dataflow.opportunities import _merged_compute

    cross_variants: dict[tuple[str, str], str] = {}
    groups: dict[tuple[str, str], list[SelectedOpportunity]] = {}
    for sel in cross:
        assert sel.cross_phase is not None
        groups.setdefault((sel.phase, sel.cross_phase), []).append(sel)
    for (pa, pb), sels in groups.items():
        ta = transformed[pa]
        tb = transformed[pb]
        drop: set[int] = set()
        for sel in sels:
            sa = _shifted_offset(sel.offsets[0], by_phase.get(pa, []))
            sb = _shifted_offset(sel.cross_offset, by_phase.get(pb, []))
            ta[sa] = _merged_compute(ta[sa], tb[sb])
            drop.add(sb)
        vname = f"{pb}@after:{pa}"
        transformed[vname] = [
            e for i, e in enumerate(tb) if i not in drop
        ]
        cross_variants[(pa, pb)] = vname
    return cross_variants


# ----------------------------------------------------------------------
# the compiled artifact
# ----------------------------------------------------------------------
@dataclass
class AppliedOpportunity:
    """One opportunity the compiler actually lowered, with its price."""

    kind: str
    phase: str
    offsets: tuple[int, ...]
    kernels: tuple[str, ...] = ()
    var: str | None = None
    proof: str = ""
    #: roofline/launch-model pricing of the fused launch (simulated
    #: seconds per step); empty for hoists/cancels
    modelled: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "offsets": list(self.offsets),
            "kernels": list(self.kernels),
            "var": self.var,
            "proof": self.proof,
            "modelled": dict(self.modelled),
        }


@dataclass
class CompiledPipeline:
    """An executable compiled schedule: per-phase lowered op lists.

    Never constructed unverified — :func:`compile_case` raises before
    returning one whose compiled replay is not bitwise-identical to the
    interpreted pipeline's.
    """

    request: CompileRequest
    program_sha: str
    steps: dict[str, list[LoweredOp]]
    registry: WorkloadRegistry
    plan: "TuningPlan | None"
    applied: list[AppliedOpportunity]
    skipped: list[tuple[str, tuple[int, ...], str]]
    #: per repeated phase: compute launches per iteration, before/after
    launches: dict[str, dict[str, int]]
    #: cross-phase fusions: ``(phase_a, phase_b) -> variant step name``;
    #: the variant is ``phase_b``'s step minus the launches fused into
    #: ``phase_a``'s, dispatched whenever ``phase_b`` follows ``phase_a``
    cross_variants: dict[tuple[str, str], str] = field(default_factory=dict)
    #: the translation validator's report (attached by ``compile_case``)
    validation: "object | None" = None
    verified: bool = False

    def launches_per_step(self) -> dict[str, int]:
        """Total per-iteration kernel launches across repeated phases."""
        return {
            side: sum(v[side] for v in self.launches.values())
            for side in ("interpreted", "compiled")
        }

    def bind(
        self, rt: "Runtime", faithful: bool | None = None
    ) -> "BoundPipeline":
        return BoundPipeline(self, rt, faithful=faithful)


class BoundPipeline:
    """A :class:`CompiledPipeline` bound to one live runtime."""

    def __init__(
        self,
        compiled: CompiledPipeline,
        rt: "Runtime",
        faithful: bool | None = None,
    ):
        self.compiled = compiled
        self.rt = rt
        self.steps: dict[str, BoundStep] = {
            phase: bind_ops(
                phase, ops, rt, compiled.registry, compiled.plan, faithful
            )
            for phase, ops in compiled.steps.items()
        }

    def run(self) -> GpuTimes:
        """Execute the full compiled schedule; same failure semantics as
        the interpreted drivers (OOM → ``failed_times('oom')``).

        Tracks the previous phase so a cross-phase fusion's partner
        variant (the phase step minus the launches that moved into the
        predecessor's fused launch) fires exactly where the recording
        proved the adjacency.  Prologues are injected steps and do not
        advance the phase sequence.
        """
        from repro.core.pipeline import failed_times

        req = self.compiled.request
        steps = self.steps
        variants = self.compiled.cross_variants
        prev: str | None = None

        def step(phase: str) -> None:
            nonlocal prev
            name = variants.get((prev, phase), phase)
            steps[name if name in steps else phase]()
            prev = phase

        try:
            step("allocate")
        except DeviceOutOfMemoryError:
            return failed_times("oom")
        if "forward_prologue" in steps:
            steps["forward_prologue"]()
        for n in range(req.nt):
            step("forward")
            if (n + 1) % req.snap_period == 0:
                step("snapshot")
        if req.mode == "rtm":
            try:
                step("swap")
            except DeviceOutOfMemoryError:
                return failed_times("oom")
            if "backward_prologue" in steps:
                steps["backward_prologue"]()
            for n in range(req.nt - 1, -1, -1):
                if (n + 1) % req.snap_period == 0:
                    step("load_snapshot")
                    step("imaging")
                step("backward")
        step("finalize")
        return self.gpu_times()

    def gpu_times(self) -> GpuTimes:
        dev = self.rt.device
        return GpuTimes(
            total=dev.elapsed,
            kernel=dev.times.kernel,
            h2d=dev.times.h2d,
            d2h=dev.times.d2h,
            alloc=dev.times.alloc,
            launches=dev.kernel_launches,
            success=True,
            profile=dev.profiler.report(),
            categories=dict(dev.clock.categories),
        )


# ----------------------------------------------------------------------
# artifact intake
# ----------------------------------------------------------------------
def opportunities_from_artifact(
    artifact: dict, program: DirectiveProgram
) -> list[OptimizationOpportunity]:
    """Opportunities for ``program`` out of a deps artifact, gated on the
    program hash.  Raises :class:`StaleArtifactError` when no entry's
    ``program_sha`` matches — the proofs do not describe this schedule.
    """
    validate_opportunities(artifact)
    sha = program.sha()
    shas_seen = []
    for entry in artifact.get("programs", []):
        entry_sha = entry.get("program_sha")
        shas_seen.append(f"{entry.get('name')}: {entry_sha or '<none>'}")
        if entry_sha != sha:
            continue
        return [
            OptimizationOpportunity(
                kind=o["kind"],
                events=tuple(o["events"]),
                var=o.get("var"),
                kernels=tuple(o.get("kernels", ())),
                queue=o.get("queue"),
                proof=o.get("proof", ""),
                savings=dict(o.get("savings", {})),
                remove_events=tuple(o.get("remove_events", ())),
                insert_at=o.get("insert_at"),
                verified=bool(o.get("verified", False)),
            )
            for o in entry.get("opportunities", [])
        ]
    raise StaleArtifactError(
        f"opportunities artifact is stale for '{program.meta.name}': no "
        f"entry matches program sha {sha[:12]}… (artifact has: "
        f"{'; '.join(shas_seen) or 'no programs'}). Re-record it with "
        f"'python -m repro deps all --opportunities FILE' at the same nt."
    )


# ----------------------------------------------------------------------
# the compiler entry point
# ----------------------------------------------------------------------
def compile_case(
    request: CompileRequest,
    options: GPUOptions | None = None,
    platform: "Platform | None" = None,
    plan: "TuningPlan | None" = None,
    artifact: dict | None = None,
    runtime_factory: Callable[[], "Runtime"] | None = None,
    source_pipeline: "OffloadPipeline | None" = None,
) -> CompiledPipeline:
    """Lower one case's recorded schedule into a verified
    :class:`CompiledPipeline`.

    ``artifact`` supplies pre-proven opportunities (``repro deps
    --opportunities``); without it the dataflow engine runs in-process
    with verification on.  ``plan`` (or ``options.plan``) is honoured
    exactly as the interpreted launch path honours it.  Raises
    :class:`CompileError` — including :class:`StaleArtifactError` — on
    any failure to prove equivalence; the returned object always has
    ``verified=True``.
    """
    from repro.optim.autotune import options_with_plan

    if source_pipeline is not None:
        base = source_pipeline.options
    else:
        base = options if options is not None else GPUOptions()
    base = replace(base, compiled=False)
    if plan is not None:
        base = options_with_plan(base, plan)
    active_plan = base.plan
    if runtime_factory is None:
        runtime_factory = _default_runtime_factory(base, platform)

    recording = record_segments(
        request, base, runtime_factory, source_pipeline=source_pipeline
    )
    program = recording.program
    sha = program.sha()
    if artifact is not None:
        opportunities = opportunities_from_artifact(artifact, program)
    else:
        opportunities = find_opportunities(program, verify=True).opportunities

    selection = select_opportunities(recording, opportunities)
    cross = [s for s in selection.selected if s.cross_phase is not None]
    by_phase: dict[str, list[SelectedOpportunity]] = {}
    for sel in selection.selected:
        if sel.cross_phase is None:
            by_phase.setdefault(sel.phase, []).append(sel)

    transformed_by_phase: dict[str, list[AccEvent]] = {}
    launches: dict[str, dict[str, int]] = {}
    prologues: dict[str, list[AccEvent]] = {}
    for phase in PHASE_ORDER:
        template = recording.template(phase)
        if not template and phase not in ("allocate", "finalize"):
            continue
        transformed, hoisted = apply_to_template(
            template, by_phase.get(phase, []), program
        )
        if hoisted:
            prologues.setdefault(_PROLOGUE_OF[phase], []).extend(hoisted)
        if phase in REPEATED_PHASES:
            launches[phase] = {
                "interpreted": sum(1 for e in template if e.kind == "compute"),
                "compiled": sum(1 for e in transformed if e.kind == "compute"),
            }
        transformed_by_phase[phase] = transformed
    cross_variants = _apply_cross_phase(transformed_by_phase, by_phase, cross)

    steps: dict[str, list[LoweredOp]] = {
        phase: lower_events(events, program.extents)
        for phase, events in transformed_by_phase.items()
    }
    for name, events in prologues.items():
        steps[name] = lower_events(events, program.extents)

    registry = WorkloadRegistry.from_pipeline(recording.pipeline)
    applied = [
        _applied_record(sel, recording, registry) for sel in selection.selected
    ]
    compiled = CompiledPipeline(
        request=request,
        program_sha=sha,
        steps=steps,
        registry=registry,
        plan=active_plan,
        applied=applied,
        skipped=selection.skipped,
        launches=launches,
        cross_variants=cross_variants,
    )
    _validate_compiled_or_raise(compiled, recording)
    _verify_compiled(compiled, base, runtime_factory, source_pipeline, program)
    return compiled


def _validate_compiled_or_raise(
    compiled: CompiledPipeline, recording: SegmentedRecording
) -> None:
    """The pre-replay gate: run the translation validator and refuse any
    ERROR finding before the bitwise backstop even starts.  The report is
    attached to the pipeline either way (``compiled.validation``)."""
    from repro.analyze.framework import Severity
    from repro.compile.validate import validate_compiled

    report = validate_compiled(compiled, recording)
    compiled.validation = report
    if not report.ok:
        errors = [
            d for d in report.diagnostics if d.severity >= Severity.ERROR
        ]
        raise CompileError(
            f"translation validation of {compiled.request.name} failed "
            f"with {len(errors)} error(s): "
            + "; ".join(f"[{d.rule}] {d.message}" for d in errors[:3])
        )


def _applied_record(
    sel: SelectedOpportunity,
    recording: SegmentedRecording,
    registry: WorkloadRegistry,
) -> AppliedOpportunity:
    """Build the applied record, pricing fusions with the roofline/launch
    model (:func:`repro.optim.fused_launch_estimate`): one launch
    overhead instead of N, register pressure merged under the effective
    maxregcount."""
    opp = sel.opportunity
    if sel.cross_phase is not None:
        phase = f"{sel.phase}->{sel.cross_phase}"
        offsets = (sel.offsets[0], sel.cross_offset)
    else:
        phase, offsets = sel.phase, sel.offsets
    record = AppliedOpportunity(
        kind=opp.kind,
        phase=phase,
        offsets=offsets,
        kernels=opp.kernels,
        var=opp.var,
        proof=opp.proof,
    )
    if opp.kind == "fuse-computes" and len(opp.kernels) >= 2:
        from repro.gpusim.specs import CUDA_5_0
        from repro.optim import fused_launch_estimate

        rt = recording.pipeline.rt
        try:
            parts = [registry.resolve(k) for k in opp.kernels]
            est = fused_launch_estimate(
                rt.device.spec,
                parts,
                maxregcount=getattr(rt.flags, "maxregcount", None),
                toolkit=getattr(rt.device, "toolkit", CUDA_5_0),
            )
        except CompileError:
            return record
        record.modelled = {
            "fused_seconds": est.fused_seconds,
            "unfused_seconds": est.unfused_seconds,
            "saved_seconds": est.saved_seconds,
            "effective_maxregcount": (
                float(est.effective_maxregcount)
                if est.effective_maxregcount is not None else -1.0
            ),
            # proven launch bounds the capacity prover also derives —
            # the roofline pricing carries them so reports can compare
            # static occupancy/spill predictions against the trace
            "occupancy": est.fused.occupancy,
            "spilled_regs": float(est.fused.spilled_regs),
        }
    return record


def _verify_compiled(
    compiled: CompiledPipeline,
    options: GPUOptions,
    runtime_factory: Callable[[], "Runtime"],
    source_pipeline: "OffloadPipeline | None",
    interpreted: DirectiveProgram,
) -> None:
    """The bitwise gate: faithfully replay the compiled schedule under a
    recorder on a fresh twin and demand fingerprint equality with the
    interpreted program.  Mutates ``compiled.verified`` on success."""
    rt = runtime_factory()
    recorder = ProgramRecorder(name=f"{compiled.request.name}-compiled")
    rt.attach_recorder(recorder)
    bound = compiled.bind(rt, faithful=True)
    times = bound.run()
    if not times.success:
        raise CompileError(
            f"compiled replay of {compiled.request.name} failed "
            f"({times.failure}) where the interpreter succeeded"
        )
    expect = replay_fingerprint(interpreted)
    got = replay_fingerprint(recorder.program)
    if expect != got:
        raise CompileError(
            f"compiled step for {compiled.request.name} is NOT bitwise-"
            f"identical to the interpreted pipeline (fingerprint mismatch "
            f"after applying {len(compiled.applied)} opportunities); "
            f"refusing to use it"
        )
    compiled.verified = True


__all__ = [
    "PHASE_ORDER",
    "REPEATED_PHASES",
    "CompileRequest",
    "Segment",
    "SegmentedRecording",
    "SelectedOpportunity",
    "SelectionResult",
    "AppliedOpportunity",
    "CompiledPipeline",
    "BoundPipeline",
    "record_segments",
    "select_opportunities",
    "apply_to_template",
    "opportunities_from_artifact",
    "compile_case",
]
