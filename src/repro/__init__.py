"""repro — reproduction of *GPU Technology Applied to Reverse Time Migration
and Seismic Modeling via OpenACC* (Qawasmeh, Chapman, Hugues, Calandra,
PMAM/PPoPP 2015).

The package implements, from scratch and in pure NumPy:

* the three wave-physics formulations the paper ports (isotropic
  constant-density second-order, acoustic variable-density first-order
  staggered-grid, elastic velocity-stress), each in 2D and 3D
  (:mod:`repro.propagators`);
* seismic modeling and Reverse Time Migration drivers following the paper's
  Algorithm 1 and the five-step OpenACC offload pipeline of its Figure 4
  (:mod:`repro.core`);
* an OpenACC-style directive layer — data regions, ``kernels``/``parallel``
  constructs, loop-scheduling clauses, async queues — lowered by PGI-like and
  CRAY-like compiler personas (:mod:`repro.acc`);
* a simulated NVIDIA device (Fermi M2090 and Kepler K40) with a memory
  allocator, PCIe transfer model, CUDA occupancy calculator, roofline kernel
  cost model and profiler (:mod:`repro.gpusim`);
* an MPI-like substrate with Cartesian domain decomposition and halo exchange
  plus a CPU-cluster cost model used as the paper's full-socket reference
  (:mod:`repro.mpisim`);
* the paper's optimization catalogue — loop fission, transposition for
  coalescing, register tuning, async packing, PML restructuring
  (:mod:`repro.optim`);
* a benchmark harness regenerating every table and figure of the paper's
  evaluation section (:mod:`repro.bench`).

Quickstart::

    import repro
    model = repro.model.layered_model((301, 301), spacing=10.0,
                                      interfaces=[1500.0], velocities=[1500., 2500.])
    result = repro.core.run_modeling(repro.core.ModelingConfig(
        physics="acoustic", model=model, nt=500))
    print(result.snapshots[-1].shape)
"""

from repro.version import __version__

from repro import acc
from repro import bench
from repro import boundary
from repro import core
from repro import gpusim
from repro import grid
from repro import model
from repro import mpisim
from repro import optim
from repro import propagators
from repro import source
from repro import stencil
from repro import trace
from repro import utils

__all__ = [
    "__version__",
    "acc",
    "bench",
    "boundary",
    "core",
    "gpusim",
    "grid",
    "model",
    "mpisim",
    "optim",
    "propagators",
    "source",
    "stencil",
    "trace",
    "utils",
]
