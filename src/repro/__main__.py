"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Regenerate and print the paper's Tables 3 and 4.
``figures``
    Print the Figure 6-13 studies (optionally one by name, e.g. ``fig12``).
``plan PHYSICS NZ [NX [NY]]``
    Offload-residency plan for a case on both cards.
``sweep``
    Grid-size speedup sweep (acoustic 2-D on the K40).
``experiments [PATH]``
    Write the full EXPERIMENTS.md report.
``json [PATH]``
    Write machine-readable harness results.
``trace CASE``
    Run one case fully instrumented and write a Perfetto ``trace.json``.
``lint CASE | all | --script FILE``
    Static analysis of a case's recorded directive schedule (or of an
    ``!$acc`` script) — present-table lifetimes, async races, schedule
    smells, transfer efficiency. ``--deep`` adds the whole-program
    dataflow engine's fixed-point coherence proofs (``DF*`` findings
    with event-chain witnesses) and appends a ledger record.
    ``--fail-on SEVERITY`` gates the exit code.
``deps CASE | all | --script FILE [--ranks N]``
    Whole-program dependence graph of a case's recorded schedule:
    RAW/WAR/WAW edges + happens-before summary, detected step loops,
    cross-rank send/recv matching (``--ranks``), and machine-verified
    fusion/hoisting opportunities. ``--dot FILE`` exports Graphviz;
    ``--opportunities FILE`` writes the schema-validated JSON artifact
    (see ``docs/dataflow.md``).
``chaos CASE | all [--seed S] [--faults SPEC] [--ranks N]``
    Seeded fault-injection campaign: run each case under injected PCIe /
    kernel / ECC / OOM / MPI / dead-rank faults, recover via retry,
    checkpoint restart or degradation, and verify the recovered answer
    matches the fault-free run (see ``docs/resilience.md``).
``tune CASE [--budget N] [--out plan.json]``
    Closed-loop schedule auto-tuning: probe the case under a tracer,
    search vector length / registers / construct / async, write a
    TuningPlan JSON (see ``docs/tuning.md``).
``sanitize CASE | all | --script FILE [--ranks N] [--fix]``
    Dynamic coherence sanitizer + cross-rank halo race detector: run a
    case's per-rank schedule (or replay a script) under shadow-state and
    vector-clock checking; ``--fix`` applies the proposed directive
    edits to a script and re-sanitizes (see ``docs/analysis.md``).
``scale CASE | all [--ranks 1,2,4,8]``
    Multi-rank scaling observatory: sweep the executed multi-GPU
    pipeline over rank counts, reduce each merged trace to overlap /
    comm / critical-path metrics, assert the scaling shape against the
    paper's cluster model, and write ``BENCH_scaling.json`` (see
    ``docs/observability.md``).
``serve CASE | all [--shots N] [--workers W,...] [--faults SPEC]``
    Shot-parallel RTM service: schedule a survey's shots across
    simulated worker nodes with admission control, bounded-queue
    backpressure and fault-tolerant recovery (dead workers requeue
    their in-flight shots; duplicates are served from the result
    cache), verify the stacked image bitwise against the fault-free
    serial golden, and write ``BENCH_service.json`` (see
    ``docs/service.md``).
``report [--check]``
    Diff the latest run of every ledger group against its history;
    ``--check`` exits non-zero on regression (the CI gate).
``compile CASE | all [--opportunities F] [--plan P] [--bench FILE]``
    Fused-kernel lowering of a case's recorded directive schedule:
    apply the verified dataflow opportunities, flatten the schedule
    into per-phase compiled steps, verify bitwise against the
    interpreted pipeline, and optionally wall-clock both
    (``BENCH_step.json``; see ``docs/compile.md``).
``validate CASE | all [--artifact FILE] [--format text|json|sarif]``
    Static proofs over a case's recorded schedule: the capacity prover's
    per-phase device high-water marks (``DF210`` would-OOM, ``DF211``
    checkpoint spike) plus the translation validator's simulation proof
    of the compiled lowering (``DF201``-``DF204``), merged into one
    report (see ``docs/validate.md``).

``tables``/``figures``/``sweep`` also accept ``--trace PATH`` to record a
harness-level (wall-clock) trace of the run; ``tables``/``figures`` accept
``--plan plan.json`` to apply a tuning plan to its matching case.

``trace``/``chaos``/``tune``/``scale``/``serve`` append one structured
record per run to the run ledger (``.repro/ledger.jsonl`` by default; ``--ledger
PATH`` moves it, ``--no-ledger`` disables it) — the trajectory ``report``
reads back.
"""

from __future__ import annotations

import argparse
import sys


def _harness_tracer(args):
    """Wall-clock tracer for ``--trace PATH`` on the harness commands (the
    dedicated ``trace`` command uses the device's simulated clock instead)."""
    from repro.trace import NULL_TRACER, Tracer

    return Tracer() if getattr(args, "trace", None) else NULL_TRACER


def _write_harness_trace(args, tracer) -> None:
    if getattr(args, "trace", None):
        from repro.trace import write_perfetto

        write_perfetto(tracer, args.trace)
        print(f"wrote {args.trace}")


def _load_plan(args):
    """The ``--plan PATH`` tuning plan, or None."""
    if not getattr(args, "plan", None):
        return None
    from repro.optim.autotune import load_plan

    plan = load_plan(args.plan)
    print(f"applying tuning plan {args.plan} "
          f"({plan.case} {plan.mode}, {plan.compiler} on {plan.platform})")
    return plan


def _cmd_tables(args) -> int:
    from repro.bench import format_table3, format_table4

    plan = _load_plan(args)
    tracer = _harness_tracer(args)
    with tracer.span("tables", track="cli", cat="harness"):
        with tracer.span("table3", track="cli", cat="harness"):
            print(format_table3(plan=plan))
        print()
        with tracer.span("table4", track="cli", cat="harness"):
            print(format_table4(plan=plan))
    _write_harness_trace(args, tracer)
    return 0


def _cmd_figures(args) -> int:
    from repro.bench import figures
    from repro.bench.report import format_series

    wanted = args.name
    plan = _load_plan(args)
    tracer = _harness_tracer(args)

    def want(tag):
        return wanted is None or wanted == tag

    if plan is not None and (wanted is None or wanted == "tuned"):
        with tracer.span("tuned", track="cli", cat="harness"):
            print(format_series(
                f"Auto-tuned — {plan.case} {plan.mode} step time "
                f"({plan.compiler})",
                figures.plan_comparison(plan),
            ))

    if want("fig6") or want("fig7"):
        with tracer.span("fig6_fig7", track="cli", cat="harness"):
            for comp, series in figures.fig6_fig7_iso_variants().items():
                print(format_series(f"Figs 6/7 — ISO 3D variants ({comp})", series))
    if want("fig8") or want("fig9"):
        with tracer.span("fig8_fig9", track="cli", cat="harness"):
            for dim, series in figures.fig8_fig9_acoustic_constructs().items():
                print(format_series(f"Figs 8/9 — acoustic {dim} on CRAY", series))
    if want("fig10"):
        with tracer.span("fig10", track="cli", cat="harness"):
            pts = figures.fig10_register_sweep()
            print(format_series(
                "Fig 10 — elastic 3D registers/thread (K40)",
                {str(p.maxregcount): p.seconds for p in pts},
            ))
    if want("fig11"):
        with tracer.span("fig11", track="cli", cat="harness"):
            print(format_series("Fig 11 — async improvement fraction",
                                figures.fig11_async(), unit=""))
    if want("fig12"):
        with tracer.span("fig12", track="cli", cat="harness"):
            for card, s in figures.fig12_fission().items():
                print(format_series(f"Fig 12 — acoustic 3D fission ({card})", s))
    if want("fig13"):
        with tracer.span("fig13", track="cli", cat="harness"):
            for card, s in figures.fig13_coalescing().items():
                print(format_series(f"Fig 13 — coalescing fix ({card})", s))
    if want("fig14") or want("fig15"):
        with tracer.span("fig14_fig15", track="cli", cat="harness"):
            for label, rep in figures.fig14_fig15_profiles().items():
                print(f"Figs 14/15 — profile ({label})")
                print(rep.to_text())
                print()
    _write_harness_trace(args, tracer)
    return 0


def _cmd_plan(args) -> int:
    from repro.core import plan_offload
    from repro.gpusim import K40, M2090

    shape = tuple(int(n) for n in args.dims)
    for spec in (M2090, K40):
        print(plan_offload(args.physics, shape, spec).report())
        print()
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench import grid_size_sweep

    tracer = _harness_tracer(args)
    with tracer.span("sweep", track="cli", cat="harness", nt=args.nt):
        for p in grid_size_sweep(nt=args.nt):
            tracer.instant(f"point:{int(p.x)}", track="cli", cat="harness",
                           speedup=p.speedup)
            print(f"  {int(p.x):>5}^2 : speedup {p.speedup:5.2f} "
                  f"(GPU {p.gpu_total:.2f} s, CPU {p.cpu_total:.2f} s)")
    _write_harness_trace(args, tracer)
    return 0


def _cmd_experiments(args) -> int:
    from repro.bench.experiments import generate

    generate(args.path)
    print(f"wrote {args.path}")
    return 0


def _cmd_json(args) -> int:
    from repro.bench.experiments import write_json

    write_json(args.path)
    print(f"wrote {args.path}")
    return 0


def _cmd_trace(args) -> int:
    from repro.trace.cli import run_trace_command

    return run_trace_command(args)


def _cmd_lint(args) -> int:
    from repro.analyze.cli import run_lint_command

    return run_lint_command(args)


def _cmd_deps(args) -> int:
    from repro.analyze.dataflow.cli import run_deps_command

    return run_deps_command(args)


def _cmd_chaos(args) -> int:
    from repro.resilience.chaos import run_chaos_command

    return run_chaos_command(args)


def _cmd_tune(args) -> int:
    from repro.optim.autotune import run_tune_command

    return run_tune_command(args)


def _cmd_sanitize(args) -> int:
    from repro.sanitize.cli import run_sanitize_command

    return run_sanitize_command(args)


def _cmd_scale(args) -> int:
    from repro.observe.scaling import run_scale_command

    return run_scale_command(args)


def _cmd_serve(args) -> int:
    from repro.serve.campaign import run_serve_command

    return run_serve_command(args)


def _cmd_report(args) -> int:
    from repro.observe.report import run_report_command

    return run_report_command(args)


def _cmd_compile(args) -> int:
    from repro.compile.cli import run_compile_command

    return run_compile_command(args)


def _cmd_validate(args) -> int:
    from repro.analyze.validate_cli import run_validate_command

    return run_validate_command(args)


def _add_ledger_args(p) -> None:
    from repro.observe.ledger import DEFAULT_LEDGER_PATH

    p.add_argument("--ledger", metavar="PATH", default=DEFAULT_LEDGER_PATH,
                   help="run-ledger JSONL path "
                   f"(default {DEFAULT_LEDGER_PATH})")
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append this run to the ledger")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'GPU Technology Applied to "
        "RTM and Seismic Modeling via OpenACC' (PMAM/PPoPP 2015)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    t = sub.add_parser("tables", help="regenerate Tables 3 and 4")
    t.add_argument("--trace", metavar="PATH", help="write a harness trace")
    t.add_argument("--plan", metavar="PATH",
                   help="apply a tuning plan JSON to its matching case")
    t.set_defaults(fn=_cmd_tables)

    f = sub.add_parser("figures", help="regenerate the Figure 6-15 studies")
    f.add_argument("name", nargs="?",
                   help="one figure, e.g. fig12 (or 'tuned' with --plan)")
    f.add_argument("--trace", metavar="PATH", help="write a harness trace")
    f.add_argument("--plan", metavar="PATH",
                   help="print the plan's default-vs-tuned step-time study")
    f.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("plan", help="offload residency plan for one case")
    p.add_argument("physics", choices=["isotropic", "acoustic", "elastic", "vti"])
    p.add_argument("dims", nargs="+", help="grid shape, e.g. 512 512 512")
    p.set_defaults(fn=_cmd_plan)

    s = sub.add_parser("sweep", help="grid-size speedup sweep")
    s.add_argument("--nt", type=int, default=100)
    s.add_argument("--trace", metavar="PATH", help="write a harness trace")
    s.set_defaults(fn=_cmd_sweep)

    e = sub.add_parser("experiments", help="write EXPERIMENTS.md")
    e.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    e.set_defaults(fn=_cmd_experiments)

    j = sub.add_parser("json", help="write machine-readable results")
    j.add_argument("path", nargs="?", default="experiments.json")
    j.set_defaults(fn=_cmd_json)

    tr = sub.add_parser(
        "trace",
        help="run one case instrumented; write a Perfetto trace.json",
    )
    tr.add_argument("case", help="e.g. iso2d, acoustic3d, el2d")
    tr.add_argument("--mode", choices=["modeling", "rtm"], default="rtm")
    tr.add_argument("--nt", type=int, default=60, help="time steps")
    tr.add_argument("--ranks", type=int, default=1,
                    help="simulated MPI ranks for a halo-exchange superstep")
    tr.add_argument("--out", default="trace.json", help="Perfetto JSON path")
    tr.add_argument("--jsonl", metavar="PATH", help="also write flat JSONL")
    _add_ledger_args(tr)
    tr.set_defaults(fn=_cmd_trace)

    li = sub.add_parser(
        "lint",
        help="static analysis of directive schedules (recorded or scripted)",
    )
    li.add_argument(
        "case", nargs="?",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    li.add_argument("--script", metavar="FILE",
                    help="lint an !$acc directive script instead of a case")
    li.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="rtm")
    li.add_argument("--nt", type=int, default=24,
                    help="recorded time steps (pattern repeats; keep small)")
    li.add_argument("--compiler", metavar="NAME",
                    help="compiler persona, e.g. pgi-14.6, cray-8.2.6")
    li.add_argument("--json", action="store_true",
                    help="machine-readable report (alias of --format json)")
    li.add_argument("--format", choices=["text", "json", "sarif"],
                    default=None,
                    help="report format (default text; sarif for CI "
                    "code-scanning uploads)")
    li.add_argument("--deep", action="store_true",
                    help="add the whole-program dataflow engine: "
                    "fixed-point coherence proofs with DF* codes and "
                    "event-chain witnesses (appends a ledger record)")
    li.add_argument("--fail-on", default="error",
                    metavar="SEVERITY",
                    help="exit non-zero at/above this severity "
                    "(info|warning|error|none; default error)")
    _add_ledger_args(li)
    li.set_defaults(fn=_cmd_lint)

    de = sub.add_parser(
        "deps",
        help="whole-program dependence graph, cross-rank checks, and "
        "verified fusion/hoisting opportunities",
    )
    de.add_argument(
        "case", nargs="?",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    de.add_argument("--script", metavar="FILE",
                    help="analyze an !$acc directive script instead of a case")
    de.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="rtm")
    de.add_argument("--nt", type=int, default=24,
                    help="recorded time steps (pattern repeats; keep small)")
    de.add_argument("--ranks", type=int, default=1,
                    help="simulated MPI ranks; >1 enables the cross-rank "
                    "send/recv matching and deadlock pass")
    de.add_argument("--dot", metavar="FILE",
                    help="write the Graphviz dependence graph of a single "
                    "target")
    de.add_argument("--opportunities", metavar="FILE",
                    help="write the schema-validated OptimizationOpportunity "
                    "JSON artifact")
    de.add_argument("--no-verify", action="store_true",
                    help="skip the bitwise replay verification of each "
                    "opportunity (faster; verified count will be 0)")
    de.add_argument("--format", choices=["text", "json"], default="text")
    de.add_argument("--fail-on", default="none",
                    metavar="SEVERITY",
                    help="exit non-zero on cross-rank findings at/above "
                    "this severity (error|none; default none)")
    de.set_defaults(fn=_cmd_deps)

    sa = sub.add_parser(
        "sanitize",
        help="dynamic coherence sanitizer + cross-rank halo race detector",
    )
    sa.add_argument(
        "case", nargs="?",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    sa.add_argument("--script", metavar="FILE",
                    help="replay an !$acc directive script instead of a case")
    sa.add_argument("--ranks", type=int, default=1,
                    help="simulated GPUs/MPI ranks (default 1)")
    sa.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="rtm")
    sa.add_argument("--nt", type=int, default=8,
                    help="recorded time steps (pattern repeats; keep small)")
    sa.add_argument("--fix", action="store_true",
                    help="apply proposed directive edits to the --script "
                    "file and re-sanitize")
    sa.add_argument("--output", metavar="FILE",
                    help="with --fix: write the fixed script here instead "
                    "of in place")
    sa.add_argument("--json", action="store_true",
                    help="machine-readable report (alias of --format json)")
    sa.add_argument("--format", choices=["text", "json", "sarif"],
                    default=None,
                    help="report format (default text)")
    sa.add_argument("--fail-on", default="error",
                    metavar="SEVERITY",
                    help="exit non-zero at/above this severity "
                    "(info|warning|error|none; default error)")
    sa.set_defaults(fn=_cmd_sanitize)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with executed recovery",
    )
    ch.add_argument(
        "case",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    ch.add_argument("--seed", type=int, default=7,
                    help="campaign seed (identical seeds reproduce "
                    "identical reports; default 7)")
    ch.add_argument("--faults", metavar="SPEC",
                    help="explicit fault specs 'kind[@op][xN][:rank],...' "
                    "instead of the seeded per-kind sweep")
    ch.add_argument("--ranks", type=int, default=1,
                    help="simulated GPUs/MPI ranks (>1 adds message and "
                    "dead-rank faults; default 1)")
    ch.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="both")
    ch.add_argument("--nt", type=int, default=None,
                    help="time steps per run (default 16, or 12 decomposed)")
    ch.add_argument("--format", choices=["text", "json"], default="text")
    ch.add_argument("--out", metavar="PATH",
                    help="also write the report to this file")
    ch.add_argument("--trace", metavar="PATH",
                    help="write a Perfetto trace of faults and recovery")
    _add_ledger_args(ch)
    ch.set_defaults(fn=_cmd_chaos)

    tu = sub.add_parser(
        "tune",
        help="closed-loop schedule auto-tuning; writes a TuningPlan JSON",
    )
    tu.add_argument("case", help="e.g. iso2d, acoustic-2d, el3d")
    tu.add_argument("--mode", choices=["modeling", "rtm"], default="rtm")
    tu.add_argument("--budget", type=int, default=8,
                    help="max measured probe runs in the search (default 8)")
    tu.add_argument("--nt", type=int, default=6,
                    help="time steps per probe window (default 6)")
    tu.add_argument("--compiler", metavar="NAME",
                    help="compiler persona, e.g. pgi-14.6, cray-8.2.6")
    tu.add_argument("--out", default="plan.json",
                    help="TuningPlan JSON path (default plan.json)")
    _add_ledger_args(tu)
    tu.set_defaults(fn=_cmd_tune)

    sc = sub.add_parser(
        "scale",
        help="multi-rank scaling observatory; writes BENCH_scaling.json",
    )
    sc.add_argument(
        "case",
        help="e.g. iso2d, ac3d — 'all' or a comma list for the full sweep",
    )
    sc.add_argument("--ranks", default="1,2,4,8",
                    help="comma-separated rank counts (default 1,2,4,8)")
    sc.add_argument("--mode", choices=["modeling", "rtm"], default="rtm")
    sc.add_argument("--nt", type=int, default=16,
                    help="time steps per point (default 16)")
    sc.add_argument("--out", default="BENCH_scaling.json",
                    help="scaling artifact path (default BENCH_scaling.json)")
    _add_ledger_args(sc)
    sc.set_defaults(fn=_cmd_scale)

    sv = sub.add_parser(
        "serve",
        help="shot-parallel RTM service with fault-tolerant scheduling; "
        "writes BENCH_service.json",
    )
    sv.add_argument(
        "case",
        help="e.g. iso2d, ac2d, el2d — 'all' or a comma list for the "
        "2-D sweep",
    )
    sv.add_argument("--shots", type=int, default=4,
                    help="shots per survey (default 4)")
    sv.add_argument("--workers", default="2,4",
                    help="comma-separated worker counts (default 2,4)")
    sv.add_argument("--gpus", type=int, default=1,
                    help="cards per worker node; >1 adds the verified "
                    "multi-card node harness (default 1)")
    sv.add_argument("--nt", type=int, default=24,
                    help="time steps per shot (default 24)")
    sv.add_argument("--faults", metavar="SPEC",
                    help="fault specs 'kind[@op][xN][:rank],...' — rank "
                    "names the worker (mpi-rank-dead@x1, shot-poison:2)")
    sv.add_argument("--seed", type=int, default=7,
                    help="scheduler/backoff seed (default 7)")
    sv.add_argument("--capacity", type=int, default=64,
                    help="bounded shot-queue capacity (default 64)")
    sv.add_argument("--policy", choices=["reject", "shed"],
                    default="reject",
                    help="admission policy when a survey does not fit "
                    "(default reject)")
    sv.add_argument("--no-resubmit", action="store_true",
                    help="skip the duplicate survey submission that "
                    "exercises the result cache")
    sv.add_argument("--quarantine-after", type=int, default=3,
                    help="failures before a poisoned shot is "
                    "quarantined (default 3)")
    sv.add_argument("--format", choices=["text", "json"], default="text")
    sv.add_argument("--out", default="BENCH_service.json",
                    help="service artifact path "
                    "(default BENCH_service.json)")
    _add_ledger_args(sv)
    sv.set_defaults(fn=_cmd_serve)

    rp = sub.add_parser(
        "report",
        help="diff the latest runs against the ledger trajectory",
    )
    rp.add_argument("--check", action="store_true",
                    help="exit non-zero when any group regressed")
    rp.add_argument("--ledger", metavar="PATH", default=None,
                    help="ledger path (default .repro/ledger.jsonl)")
    rp.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    rp.add_argument("--window", type=int, default=5,
                    help="baseline = median of up to N prior runs (default 5)")
    rp.add_argument("--command-filter", metavar="CMD", default=None,
                    help="only report groups of one command "
                    "(trace|tune|chaos|scale|serve)")
    rp.add_argument("--format", choices=["text", "json"], default="text")
    rp.set_defaults(fn=_cmd_report)

    co = sub.add_parser(
        "compile",
        help="fused-kernel lowering of recorded schedules, with bitwise "
        "verification against the interpreter",
    )
    co.add_argument(
        "case",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    co.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="both")
    co.add_argument("--nt", type=int, default=24,
                    help="recorded time steps (must match the deps artifact "
                    "when --opportunities is given)")
    co.add_argument("--opportunities", metavar="FILE",
                    help="consume a 'repro deps --opportunities' artifact "
                    "(hash-gated; stale artifacts are refused) instead of "
                    "running the dataflow engine in-process")
    co.add_argument("--plan", metavar="FILE",
                    help="apply a 'repro tune' TuningPlan to launch choices "
                    "(fused launches share the dominant part's entry)")
    co.add_argument("--bench", metavar="FILE",
                    help="wall-clock interpreted vs compiled and write the "
                    "BENCH_step.json document here")
    co.add_argument("--repeats", type=int, default=5,
                    help="timing repetitions per side for --bench "
                    "(best-of-N; default 5)")
    co.add_argument("--format", choices=["text", "json"], default="text")
    _add_ledger_args(co)
    co.set_defaults(fn=_cmd_compile)

    va = sub.add_parser(
        "validate",
        help="static capacity + translation proofs of recorded schedules "
        "(DF2xx findings, SARIF for CI uploads)",
    )
    va.add_argument(
        "case",
        help="e.g. iso2d, acoustic3d, el2d — or 'all' for the full inventory",
    )
    va.add_argument("--mode", choices=["modeling", "rtm", "both"],
                    default="both")
    va.add_argument("--nt", type=int, default=24,
                    help="recorded time steps (must match the deps artifact "
                    "when --opportunities is given)")
    va.add_argument("--opportunities", metavar="FILE",
                    help="consume a 'repro deps --opportunities' artifact "
                    "(hash-gated; stale artifacts are refused)")
    va.add_argument("--artifact", metavar="FILE",
                    help="write the machine-readable proof document "
                    "(capacity phases + discharged obligations)")
    va.add_argument("--fail-on", metavar="SEVERITY", default="error",
                    help="exit 1 on findings at/above this severity "
                    "(info|warning|error; default error)")
    va.add_argument("--format", choices=["text", "json", "sarif"],
                    default="text")
    _add_ledger_args(va)
    va.set_defaults(fn=_cmd_validate)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
