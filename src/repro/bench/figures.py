"""The paper's Figure 6-15 studies, regenerated against the model.

Each function returns plain data (label -> seconds, sweep points, or
profile reports); the ``benchmarks/`` suite prints them and asserts the
paper's qualitative shape.
"""

from __future__ import annotations

from repro.acc.clauses import CompileFlags, LoopSchedule
from repro.acc.compiler import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompilerPersona
from repro.bench.workloads import modeling_case
from repro.core.config import GPUOptions
from repro.core.modeling import estimate_modeling
from repro.core.platform import CRAY_K40, IBM_M2090, Platform
from repro.core.rtm import estimate_rtm
from repro.gpusim.kernelmodel import LaunchConfig, estimate_kernel_time
from repro.gpusim.profiler import ProfileReport
from repro.gpusim.specs import CUDA_5_0, CUDA_5_5, K40, M2090
from repro.optim.transformations import mark_uncoalesced, with_transposition
from repro.optim.tuning import RegisterSweepPoint, async_comparison, register_sweep
from repro.propagators.workloads import acoustic_workloads, elastic_workloads

#: shorter runs for the per-figure studies (shape is step-count invariant)
_FIG_NT = 200
_FIG_SNAP = 10


def _modeling_time(
    physics: str,
    ndim: int,
    persona: CompilerPersona,
    platform: Platform,
    pml_variant: str = "branchy",
    construct: str | None = None,
    schedule: LoopSchedule | None = None,
    async_kernels: bool | None = None,
    nt: int = _FIG_NT,
) -> float:
    case = modeling_case(physics, ndim)
    options = GPUOptions(
        compiler=persona,
        flags=CompileFlags(maxregcount=64, pin=True),
        construct=construct,
        schedule=schedule,
        async_kernels=async_kernels,
    )
    t = estimate_modeling(
        case.physics,
        case.shape,
        nt,
        case.snap_period,
        platform=platform,
        options=options,
        nreceivers=case.nreceivers,
        pml_variant=pml_variant,
        snapshot_decimate=case.snapshot_decimate,
    )
    return t.total


# ----------------------------------------------------------------------
# Figures 6 and 7: ISO 3-D modeling code variants under PGI 14.6 / 14.3
# ----------------------------------------------------------------------
def fig6_fig7_iso_variants() -> dict[str, dict[str, float]]:
    """``{compiler: {variant: seconds}}`` for the three isotropic PML
    variants under PGI 14.3 (CUDA 5.0 — restructuring pays, Figure 7) and
    PGI 14.6 (CUDA 5.5 — it doesn't, Figure 6)."""
    out: dict[str, dict[str, float]] = {}
    for persona in (PGI_14_3, PGI_14_6):
        series = {}
        for variant in ("branchy", "restructured", "everywhere"):
            series[variant] = _modeling_time(
                "isotropic", 3, persona, CRAY_K40, pml_variant=variant
            )
        out[persona.name] = series
    return out


# ----------------------------------------------------------------------
# Figures 8 and 9: acoustic 2-D/3-D, kernels vs parallel on CRAY
# ----------------------------------------------------------------------
def fig8_fig9_acoustic_constructs() -> dict[str, dict[str, float]]:
    """``{'2D'|'3D': {'kernels': s, 'parallel': s}}`` under the CRAY
    compiler — explicit ``parallel`` gang/worker/vector wins."""
    out: dict[str, dict[str, float]] = {}
    for ndim in (2, 3):
        series = {
            "kernels": _modeling_time(
                "acoustic", ndim, CRAY_8_2_6, CRAY_K40, construct="kernels",
                schedule=LoopSchedule.auto(),
            ),
            "parallel": _modeling_time(
                "acoustic", ndim, CRAY_8_2_6, CRAY_K40, construct="parallel",
                schedule=LoopSchedule.gwv(),
            ),
        }
        out[f"{ndim}D"] = series
    return out


# ----------------------------------------------------------------------
# Figure 10: elastic 3-D registers-per-thread sweep
# ----------------------------------------------------------------------
def fig10_register_sweep() -> list[RegisterSweepPoint]:
    """maxregcount sweep of the elastic 3-D kernel set on the K40."""
    case = modeling_case("elastic", 3)
    workloads = elastic_workloads(case.shape)
    return register_sweep(K40, workloads, toolkit=CUDA_5_5)


# ----------------------------------------------------------------------
# Figure 11: elastic 2-D async streams
# ----------------------------------------------------------------------
def fig11_async() -> dict[str, float]:
    """Async improvement fraction per compiler for the elastic 2-D kernel
    set on the K40 (CRAY gains ~30 % from launch-gap packing; PGI's
    expensive async path loses).

    Uses a small per-shot 2-D tile — the regime the paper's Figure 11
    shows, where per-kernel work is tens of microseconds and the
    launch/present-table gap between kernels is a comparable cost.
    """
    workloads = elastic_workloads((128, 128))
    cray = async_comparison(
        K40, workloads, steps=100, enqueue_cost_factor=CRAY_8_2_6.async_enqueue_factor,
        toolkit=CUDA_5_5,
    )
    pgi = async_comparison(
        K40, workloads, steps=100, enqueue_cost_factor=PGI_14_6.async_enqueue_factor,
        toolkit=CUDA_5_5,
    )
    return {"CRAY": cray.improvement, "PGI": pgi.improvement}


# ----------------------------------------------------------------------
# Figure 12: loop fission of the acoustic 3-D kernel
# ----------------------------------------------------------------------
def fig12_fission() -> dict[str, dict[str, float]]:
    """``{card: {'fused': s, 'fissioned': s}}`` per step of the acoustic
    3-D flow update."""
    case = modeling_case("acoustic", 3)
    out: dict[str, dict[str, float]] = {}
    for spec, toolkit in ((M2090, CUDA_5_0), (K40, CUDA_5_5)):
        fused = [
            w
            for w in acoustic_workloads(case.shape, fissioned=False)
            if "q_fused" in w.name
        ]
        parts = [
            w
            for w in acoustic_workloads(case.shape, fissioned=True)
            if "q_axis" in w.name
        ]
        cfg = LaunchConfig(maxregcount=64)
        out[spec.name] = {
            "fused": sum(estimate_kernel_time(spec, w, cfg, toolkit).seconds for w in fused),
            "fissioned": sum(
                estimate_kernel_time(spec, w, cfg, toolkit).seconds for w in parts
            ),
        }
    return out


# ----------------------------------------------------------------------
# Figure 13: transposition for coalescing (acoustic 2-D backward kernel)
# ----------------------------------------------------------------------
def fig13_coalescing() -> dict[str, dict[str, float]]:
    """``{card: {'original': s, 'transposed': s}}`` for the 2-D backward
    flow kernel whose inner loop is not parallelizable in place."""
    case = modeling_case("acoustic", 2)
    (flow,) = [
        w for w in acoustic_workloads(case.shape) if "q_fused" in w.name
    ]
    out: dict[str, dict[str, float]] = {}
    for spec, toolkit in ((M2090, CUDA_5_0), (K40, CUDA_5_5)):
        cfg = LaunchConfig(maxregcount=64)
        original = estimate_kernel_time(spec, mark_uncoalesced(flow), cfg, toolkit).seconds
        fixed = sum(
            estimate_kernel_time(spec, w, cfg, toolkit).seconds
            for w in with_transposition(mark_uncoalesced(flow))
        )
        out[spec.name] = {"original": original, "transposed": fixed}
    return out


# ----------------------------------------------------------------------
# Figures 14 and 15: ISO 2-D RTM profiles, image on CPU vs GPU
# ----------------------------------------------------------------------
def fig14_fig15_profiles(nt: int = _FIG_NT) -> dict[str, ProfileReport]:
    """``{'image_on_cpu': report, 'image_on_gpu': report}`` of the
    isotropic 2-D RTM run on the M2090 (the paper's Figure 14/15 setup)."""
    case = modeling_case("isotropic", 2)
    out: dict[str, ProfileReport] = {}
    for label, on_gpu in (("image_on_cpu", False), ("image_on_gpu", True)):
        options = GPUOptions(
            compiler=PGI_14_3,
            flags=CompileFlags(maxregcount=64, pin=True),
            image_on_gpu=on_gpu,
        )
        t = estimate_rtm(
            case.physics,
            case.shape,
            nt,
            case.snap_period,
            platform=IBM_M2090,
            options=options,
            nreceivers=case.nreceivers,
            pml_variant="everywhere",
        )
        assert t.profile is not None
        out[label] = t.profile
    return out


# ----------------------------------------------------------------------
# Auto-tuned schedule vs the default static schedule (``--plan``)
# ----------------------------------------------------------------------
def plan_comparison(plan) -> dict[str, float]:
    """``{'default': s, 'auto-tuned': s}`` per-time-step seconds of the
    plan's case, re-measured by probe runs: the default static schedule
    against the :class:`~repro.optim.autotune.TuningPlan` as applied."""
    from repro.acc.compiler import COMPILERS
    from repro.optim.autotune import (
        options_with_plan,
        request_for_case,
        run_probe,
    )

    persona = next(
        (p for p in COMPILERS.values() if p.name == plan.compiler), None
    )
    request = request_for_case(plan.case, mode=plan.mode, compiler=persona)
    default = run_probe(request, request.base_options)
    tuned = run_probe(
        request, options_with_plan(request.base_options, plan)
    )
    return {
        "default": default.step_seconds,
        "auto-tuned": tuned.step_seconds,
    }


# ----------------------------------------------------------------------
# Section 5.1 step 4: backward kernel reuse
# ----------------------------------------------------------------------
def backward_reuse_comparison(physics: str = "acoustic", ndim: int = 2) -> dict[str, float]:
    """RTM total with the original backward kernel vs the reused modeling
    kernel ('a 3x performance speedup over the original RTM code')."""
    case = modeling_case(physics, ndim)
    out = {}
    for label, reuse in (("original", False), ("reuse_modeling_kernel", True)):
        options = GPUOptions(
            compiler=PGI_14_6,
            flags=CompileFlags(maxregcount=64, pin=True),
            reuse_forward_kernel=reuse,
        )
        t = estimate_rtm(
            case.physics,
            case.shape,
            _FIG_NT,
            case.snap_period,
            platform=CRAY_K40,
            options=options,
            nreceivers=case.nreceivers,
        )
        out[label] = t.total
    return out
