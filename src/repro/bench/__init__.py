"""Benchmark harness regenerating every table and figure of the paper.

* :mod:`repro.bench.workloads` — the 12 seismic cases' grid sizes and step
  counts (the paper does not publish its exact grids; ours are chosen so the
  memory-capacity gates behave identically — elastic 3-D exceeds the M2090).
* :mod:`repro.bench.table3` / :mod:`repro.bench.table4` — modeling and RTM
  timing/speedup matrices.
* :mod:`repro.bench.figures` — the Figure 6-15 studies.
* :mod:`repro.bench.paper_data` — the paper's reported numbers, for the
  side-by-side comparison in EXPERIMENTS.md.
"""

from repro.bench.workloads import CaseSpec, modeling_case, ALL_CASES, case_name
from repro.bench.table3 import table3_rows, format_table3
from repro.bench.table4 import table4_rows, format_table4
from repro.bench.report import (
    Cell,
    Row,
    format_gpu_times,
    format_speedup_table,
)
from repro.bench.sweeps import (
    SweepPoint,
    grid_size_sweep,
    snapshot_period_sweep,
    achieved_bandwidth_sweep,
)
from repro.bench import figures
from repro.bench import paper_data

__all__ = [
    "CaseSpec",
    "modeling_case",
    "ALL_CASES",
    "case_name",
    "table3_rows",
    "format_table3",
    "table4_rows",
    "format_table4",
    "Cell",
    "Row",
    "format_gpu_times",
    "format_speedup_table",
    "SweepPoint",
    "grid_size_sweep",
    "snapshot_period_sweep",
    "achieved_bandwidth_sweep",
    "figures",
    "paper_data",
]
