"""The paper's reported numbers (its Tables 3 and 4, and headline claims),
used by EXPERIMENTS.md generation and the shape assertions.

Cell order matches :class:`repro.bench.report.Cell`:
(GPU total, total speedup, GPU kernel, kernel speedup). ``None`` = the
paper's ``x`` (configuration did not run).
"""

from __future__ import annotations

#: Table 3 — seismic modeling. Keys: case -> platform/compiler -> tuple.
TABLE3 = {
    "ISOTROPIC 2D": {
        "cray_cray": (2.3, 0.6, 1.6, 0.7),
        "cray_pgi": (1.4, 1.0, 1.0, 1.1),
        "ibm_pgi": (2.0, 2.0, 1.5, 2.3),
    },
    "ACOUSTIC 2D": {
        "cray_cray": (4.1, 0.7, 3.4, 0.9),
        "cray_pgi": (3.2, 0.9, 2.7, 1.1),
        "ibm_pgi": (5.0, 1.3, 4.4, 1.2),
    },
    "ELASTIC 2D": {
        "cray_cray": (7.0, 0.9, 6.6, 0.7),
        "cray_pgi": (4.5, 1.2, 4.3, 1.1),
        "ibm_pgi": (7.0, 1.9, 4.8, 2.4),
    },
    "ISOTROPIC 3D": {
        "cray_cray": (460.0, 1.0, 365.0, 0.9),
        "cray_pgi": (365.0, 1.3, 285.0, 1.2),
        "ibm_pgi": (448.0, 1.2, 385.0, 1.0),
    },
    "ACOUSTIC 3D": {
        "cray_cray": (310.0, 1.5, 220.0, 1.2),
        "cray_pgi": (235.0, 2.0, 155.0, 1.7),
        "ibm_pgi": (260.0, 2.3, 200.0, 2.3),
    },
    "ELASTIC 3D": {
        "cray_cray": (4000.0, 2.1, 3100.0, 2.4),
        "cray_pgi": (3200.0, 2.7, 2700.0, 2.7),
        "ibm_pgi": None,  # elastic variables exceed the Fermi's 6 GB
    },
}

#: Table 4 — RTM.
TABLE4 = {
    "ISOTROPIC 2D": {
        "cray_cray": (8.5, 0.4, 2.0, 1.2),
        "cray_pgi": (14.0, 0.2, 2.3, 1.0),
        "ibm_pgi": (11.5, 0.5, 4.0, 1.3),
    },
    "ACOUSTIC 2D": {
        "cray_cray": (12.2, 1.2, 4.5, 2.4),
        "cray_pgi": (16.0, 0.9, 5.6, 2.0),
        "ibm_pgi": (19.0, 5.3, 9.0, 7.9),
    },
    "ELASTIC 2D": {
        "cray_cray": (20.0, 0.8, 7.0, 1.7),
        "cray_pgi": (23.0, 0.7, 8.0, 1.5),
        "ibm_pgi": (30.0, 1.1, 12.0, 2.3),
    },
    "ISOTROPIC 3D": {
        "cray_cray": (1600.0, 0.6, 600.0, 1.1),
        "cray_pgi": (1500.0, 0.6, 550.0, 1.2),
        "ibm_pgi": (1200.0, 0.9, 800.0, 1.1),
    },
    "ACOUSTIC 3D": {
        "cray_cray": (870.0, 1.1, 320.0, 1.3),
        "cray_pgi": (765.0, 1.3, 310.0, 1.3),
        "ibm_pgi": (530.0, 10.2, 400.0, 10.8),
    },
    "ELASTIC 3D": {
        "cray_cray": None,  # CRAY compiler could not build this case
        "cray_pgi": (15000.0, 1.3, 6000.0, 2.9),
        "ibm_pgi": None,  # exceeds the Fermi's 6 GB
    },
}

#: headline claims used by the shape assertions
CLAIMS = {
    # Figure 12: loop fission of the acoustic 3-D kernel
    "fission_speedup_fermi": 3.0,
    "fission_speedup_kepler": 1.0,
    # Figure 13: transposition for coalescing
    "transpose_speedup": 3.0,
    # Figure 11 discussion: async on CRAY
    "cray_async_improvement": 0.30,
    # Figure 10: optimal registers per thread
    "best_maxregcount": 64,
    # Section 5.1 step 4: backward-kernel reuse
    "backward_reuse_speedup": 3.0,
    # Figures 14/15 profile shares (isotropic 2-D RTM)
    "main_kernel_share_2d": 0.734,
    "receiver_injection_share_2d": 0.262,
    "source_injection_share_2d": 0.004,
    # Section 6.2: 2-D vs 3-D utilization of the main kernel
    "utilization_2d": 0.70,
    "utilization_3d": 0.90,
}
