"""The 12 seismic cases (3 physics x 2 dimensions x {modeling, RTM}).

The paper does not publish its grid dimensions or step counts; these are
chosen so that (a) 2-D cases are small enough that launch overheads and
transfers matter (the paper's ~70 % 2-D GPU utilization vs ~90 % 3-D),
(b) the elastic 3-D working set exceeds the M2090's 6 GB but fits the K40
(the ``x`` cells of Tables 3-4), and (c) the acoustic 3-D RTM backward set
barely fits the M2090 — which is why the paper engineered the
forward/backward offload swap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class CaseSpec:
    """One seismic case's benchmark workload."""

    physics: str
    ndim: int
    shape: tuple[int, ...]
    nt: int
    snap_period: int
    nreceivers: int
    snapshot_decimate: int
    #: isotropic PML variant of the tuned build
    pml_variant: str = "restructured"

    @property
    def name(self) -> str:
        return f"{self.physics.upper()} {self.ndim}D"


_CASES: dict[tuple[str, int], CaseSpec] = {
    ("isotropic", 2): CaseSpec("isotropic", 2, (1024, 1024), 1000, 10, 128, 4),
    ("acoustic", 2): CaseSpec("acoustic", 2, (1024, 1024), 1000, 10, 128, 4),
    ("elastic", 2): CaseSpec("elastic", 2, (1024, 1024), 1000, 10, 128, 4),
    ("isotropic", 3): CaseSpec("isotropic", 3, (512, 512, 512), 1000, 10, 64, 4),
    ("acoustic", 3): CaseSpec("acoustic", 3, (512, 512, 512), 1000, 10, 64, 4),
    ("elastic", 3): CaseSpec("elastic", 3, (448, 448, 448), 1000, 10, 64, 4),
}

#: the paper's Table 3/4 row order
ALL_CASES: tuple[CaseSpec, ...] = (
    _CASES[("isotropic", 2)],
    _CASES[("acoustic", 2)],
    _CASES[("elastic", 2)],
    _CASES[("isotropic", 3)],
    _CASES[("acoustic", 3)],
    _CASES[("elastic", 3)],
)


def modeling_case(physics: str, ndim: int) -> CaseSpec:
    """Workload of one seismic case."""
    try:
        return _CASES[(physics.lower(), int(ndim))]
    except KeyError:
        raise ConfigurationError(
            f"no case for physics='{physics}', ndim={ndim}"
        ) from None


def case_name(physics: str, ndim: int) -> str:
    return modeling_case(physics, ndim).name
