"""Table rendering for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports bench)
    from repro.core.config import GpuTimes


@dataclass
class Cell:
    """One (GPU total, total speedup, GPU kernel, kernel speedup) group, or
    a failure (the paper's ``x``)."""

    gpu_total: float | None = None
    total_speedup: float | None = None
    gpu_kernel: float | None = None
    kernel_speedup: float | None = None
    failure: str | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def fmt(self, value: float | None, digits: int = 1) -> str:
        if self.failed or value is None:
            return "x"
        return f"{value:.{digits}f}"


@dataclass
class Row:
    """One seismic case's row: CRAY cluster (CRAY + PGI compilers) and IBM
    cluster (PGI compiler), matching the paper's table layout."""

    name: str
    cray_cray: Cell = field(default_factory=Cell)
    cray_pgi: Cell = field(default_factory=Cell)
    ibm_pgi: Cell = field(default_factory=Cell)


_HEADER = (
    "{:<14} | {:>9} {:>9} | {:>8} {:>8} | {:>9} {:>9} | {:>8} {:>8} "
    "| {:>9} {:>8} {:>9} {:>8}"
)


def format_speedup_table(title: str, rows: list[Row]) -> str:
    """Render rows in the paper's Table 3/4 layout."""
    lines = [title, "=" * len(title)]
    lines.append(
        _HEADER.format(
            "Model",
            "GPUt CRAY",
            "GPUt PGI",
            "Sp CRAY",
            "Sp PGI",
            "Kt CRAY",
            "Kt PGI",
            "KSp CRAY",
            "KSp PGI",
            "IBM GPUt",
            "IBM Sp",
            "IBM Kt",
            "IBM KSp",
        )
    )
    lines.append("-" * 140)
    for r in rows:
        lines.append(
            _HEADER.format(
                r.name,
                r.cray_cray.fmt(r.cray_cray.gpu_total),
                r.cray_pgi.fmt(r.cray_pgi.gpu_total),
                r.cray_cray.fmt(r.cray_cray.total_speedup),
                r.cray_pgi.fmt(r.cray_pgi.total_speedup),
                r.cray_cray.fmt(r.cray_cray.gpu_kernel),
                r.cray_pgi.fmt(r.cray_pgi.gpu_kernel),
                r.cray_cray.fmt(r.cray_cray.kernel_speedup),
                r.cray_pgi.fmt(r.cray_pgi.kernel_speedup),
                r.ibm_pgi.fmt(r.ibm_pgi.gpu_total),
                r.ibm_pgi.fmt(r.ibm_pgi.total_speedup),
                r.ibm_pgi.fmt(r.ibm_pgi.gpu_kernel),
                r.ibm_pgi.fmt(r.ibm_pgi.kernel_speedup),
            )
        )
    return "\n".join(lines)


#: fixed category-name column width of :func:`format_gpu_times` — wide
#: enough for every category the runtime emits (``kernel``, ``h2d``,
#: ``d2h``, ``halo``, ``alloc``, ``other``, ``total``), so breakdowns
#: from different runs and ranks align when printed side by side
GPU_TIMES_NAME_WIDTH = 8


def format_gpu_times(title: str, gpu: "GpuTimes") -> str:
    """Render one run's per-category GPU time breakdown.

    Surfaces the :class:`~repro.core.config.GpuTimes` category ledger (the
    device SimClock's cumulative kernel / h2d / d2h / alloc seconds) that
    the drivers collect — the textual twin of the profiler timelines the
    paper reads utilization off.

    Column contract (stable across runs — consumers diff these blocks):
    ``  <name:{W}> : <seconds:10.4f> s  (<share:5.1f>%)`` with
    ``W = max(GPU_TIMES_NAME_WIDTH, longest category name)``; one line
    per non-zero category, largest first, then the ``total`` line. The
    share column is percent of the run's total GPU time.
    """
    lines = [title, "-" * len(title)]
    if not gpu.success:
        lines.append(f"  FAILED ({gpu.failure})")
        return "\n".join(lines)
    cats = dict(gpu.categories)
    if not cats:  # older callers that only filled the flat fields
        cats = {"kernel": gpu.kernel, "h2d": gpu.h2d, "d2h": gpu.d2h,
                "alloc": gpu.alloc}
    cats = {k: v for k, v in cats.items() if v > 0.0}
    other = gpu.other
    if other > 0.0:
        cats["other"] = other
    width = max(GPU_TIMES_NAME_WIDTH, max((len(k) for k in cats), default=0))
    total = gpu.total if gpu.total > 0 else sum(cats.values())
    for name in sorted(cats, key=cats.get, reverse=True):
        share = 100.0 * cats[name] / total if total > 0 else 0.0
        lines.append(f"  {name:<{width}} : {cats[name]:>10.4f} s  ({share:5.1f}%)")
    lines.append(f"  {'total':<{width}} : {total:>10.4f} s  "
                 f"({gpu.launches} kernel launches)")
    return "\n".join(lines)


def format_series(title: str, series: dict[str, float], unit: str = "s") -> str:
    """Render a labelled value series (the bar charts of Figures 6-10)."""
    lines = [title, "-" * len(title)]
    width = max(len(k) for k in series) if series else 0
    for k, v in series.items():
        lines.append(f"  {k:<{width}} : {v:.4f} {unit}")
    return "\n".join(lines)
