"""Parameter sweeps beyond the paper's fixed tables.

The paper observes that GPU utilization — and with it the CPU/GPU speedup —
grows with problem dimensionality ("The three-dimensional cases showed
better speedup measurements compared with the two-dimensional cases due to
better GPU utilization"). These sweeps generalise that observation into
curves: speedup and achieved bandwidth versus grid size, and versus the
snapshot period (the transfer-intensity knob of the RTM pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acc.compiler import PGI_14_6, CompilerPersona
from repro.core.config import GPUOptions
from repro.core.modeling import estimate_modeling
from repro.core.platform import CRAY_K40, Platform
from repro.core.reference import cpu_modeling_time
from repro.core.rtm import estimate_rtm
from repro.gpusim.kernelmodel import LaunchConfig, estimate_kernel_time
from repro.propagators.workloads import workloads_for
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    speedup: float
    gpu_total: float
    cpu_total: float


def grid_size_sweep(
    physics: str = "acoustic",
    sizes: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    ndim: int = 2,
    nt: int = 200,
    snap_period: int = 10,
    platform: Platform = CRAY_K40,
    persona: CompilerPersona = PGI_14_6,
) -> list[SweepPoint]:
    """Total modeling speedup versus (square/cubic) grid edge length."""
    if ndim not in (2, 3):
        raise ConfigurationError("ndim must be 2 or 3")
    points = []
    for n in sizes:
        shape = (n,) * ndim
        gpu = estimate_modeling(
            physics, shape, nt, snap_period, platform=platform,
            options=GPUOptions(compiler=persona),
        )
        if not gpu.success:
            continue
        cpu = cpu_modeling_time(platform.cluster, physics, shape, nt, snap_period)
        points.append(
            SweepPoint(
                x=float(n),
                speedup=cpu.total / gpu.total,
                gpu_total=gpu.total,
                cpu_total=cpu.total,
            )
        )
    if not points:
        raise ConfigurationError("no sweep point fit the device")
    return points


def snapshot_period_sweep(
    physics: str = "acoustic",
    shape: tuple[int, ...] = (1024, 1024),
    periods: tuple[int, ...] = (2, 5, 10, 25, 50),
    nt: int = 300,
    platform: Platform = CRAY_K40,
    persona: CompilerPersona = PGI_14_6,
) -> dict[int, float]:
    """RTM GPU total time versus snap_period — the PCIe-traffic knob
    (smaller period = more full-field snapshots over the bus)."""
    out = {}
    for period in periods:
        t = estimate_rtm(
            physics, shape, nt, period, platform=platform,
            options=GPUOptions(compiler=persona),
        )
        if t.success:
            out[period] = t.total
    if not out:
        raise ConfigurationError("no sweep point succeeded")
    return out


def achieved_bandwidth_sweep(
    physics: str = "acoustic",
    sizes: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096),
    ndim: int = 2,
    platform: Platform = CRAY_K40,
) -> dict[int, float]:
    """Main-kernel achieved bandwidth (bytes/s) versus grid edge — the
    utilization-growth curve behind the paper's 70 %-vs-90 % numbers."""
    cfg = LaunchConfig(maxregcount=64)
    out = {}
    for n in sizes:
        shape = (n,) * ndim
        workloads = workloads_for(physics, shape)
        main = max(workloads, key=lambda w: w.points * w.flops_per_point)
        est = estimate_kernel_time(platform.gpu, main, cfg)
        out[n] = est.achieved_bandwidth
    return out
