"""Table 3 — seismic modeling timing and speedup measurements.

For each of the six seismic cases: GPU time under the CRAY and PGI compilers
on the Cray XC30 + K40, under PGI on the IBM cluster + M2090, against the
full-socket MPI CPU reference of each cluster (10 / 8 cores).
"""

from __future__ import annotations

from repro.acc.clauses import CompileFlags
from repro.acc.compiler import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompilerPersona
from repro.bench.report import Cell, Row, format_speedup_table
from repro.bench.workloads import ALL_CASES, CaseSpec
from repro.core.config import GpuTimes, GPUOptions
from repro.core.modeling import estimate_modeling
from repro.core.platform import CRAY_K40, IBM_M2090, Platform
from repro.core.reference import ReferenceTimes, cpu_modeling_time


def tuned_options(persona: CompilerPersona, case: CaseSpec, platform: Platform) -> GPUOptions:
    """The 'best optimized version of each seismic case' (paper Section 6):
    maxregcount 64 + pinned host arrays; loop fission only where it pays
    (acoustic 3-D on the register-starved Fermi); optimized backward kernel
    reuse; imaging on the GPU."""
    fission = (
        case.physics == "acoustic"
        and case.ndim == 3
        and platform.gpu.chip == "fermi"
    )
    return GPUOptions(
        compiler=persona,
        flags=CompileFlags(maxregcount=64, pin=True),
        loop_fission=fission,
        reuse_forward_kernel=True,
        image_on_gpu=True,
    )


def apply_plan(
    options: GPUOptions,
    case: CaseSpec,
    persona: CompilerPersona,
    platform: Platform,
    plan,
) -> GPUOptions:
    """Attach a :class:`~repro.optim.autotune.TuningPlan` to ``options`` when
    it was tuned for this exact (case, compiler, platform) cell; other cells
    keep the static schedule (a plan measured under one compiler persona
    says nothing about another)."""
    if plan is None:
        return options
    if plan.case != f"{case.physics}-{case.ndim}d":
        return options
    if plan.compiler != persona.name or plan.platform != platform.name:
        return options
    from repro.optim.autotune import options_with_plan

    return options_with_plan(options, plan)


def make_cell(gpu: GpuTimes, cpu: ReferenceTimes) -> Cell:
    """Combine a GPU estimate with the CPU reference into a table cell."""
    if not gpu.success:
        return Cell(failure=gpu.failure)
    return Cell(
        gpu_total=gpu.total,
        total_speedup=cpu.total / gpu.total if gpu.total > 0 else None,
        gpu_kernel=gpu.kernel,
        kernel_speedup=cpu.kernel / gpu.kernel if gpu.kernel > 0 else None,
    )


def _estimate(
    case: CaseSpec, platform: Platform, persona: CompilerPersona, plan=None
) -> GpuTimes:
    options = apply_plan(
        tuned_options(persona, case, platform), case, persona, platform, plan
    )
    return estimate_modeling(
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        platform=platform,
        options=options,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
        snapshot_decimate=case.snapshot_decimate,
    )


def table3_row(case: CaseSpec, plan=None) -> Row:
    """One seismic case's Table 3 row."""
    cpu_cray = cpu_modeling_time(
        CRAY_K40.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        snapshot_decimate=case.snapshot_decimate,
        pml_variant=case.pml_variant,
    )
    cpu_ibm = cpu_modeling_time(
        IBM_M2090.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        snapshot_decimate=case.snapshot_decimate,
        pml_variant=case.pml_variant,
    )
    return Row(
        name=case.name,
        cray_cray=make_cell(_estimate(case, CRAY_K40, CRAY_8_2_6, plan), cpu_cray),
        cray_pgi=make_cell(_estimate(case, CRAY_K40, PGI_14_6, plan), cpu_cray),
        ibm_pgi=make_cell(_estimate(case, IBM_M2090, PGI_14_3, plan), cpu_ibm),
    )


def table3_rows(
    cases: tuple[CaseSpec, ...] = ALL_CASES, plan=None
) -> list[Row]:
    """All Table 3 rows (``plan``: tuner overrides for its matching cell)."""
    return [table3_row(c, plan) for c in cases]


def format_table3(rows: list[Row] | None = None, plan=None) -> str:
    if rows is None:
        rows = table3_rows(plan=plan)
    return format_speedup_table(
        "Table 3: Seismic modeling timing and speedup measurements", rows
    )
