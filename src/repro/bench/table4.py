"""Table 4 — RTM timing and speedup measurements (same matrix as Table 3
for the full forward + backward migration)."""

from __future__ import annotations

from repro.acc.compiler import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompilerPersona
from repro.bench.report import Row, format_speedup_table
from repro.bench.table3 import make_cell, tuned_options
from repro.bench.workloads import ALL_CASES, CaseSpec
from repro.core.config import GpuTimes
from repro.core.platform import CRAY_K40, IBM_M2090, Platform
from repro.core.reference import cpu_rtm_time
from repro.core.rtm import estimate_rtm


def _estimate(case: CaseSpec, platform: Platform, persona: CompilerPersona) -> GpuTimes:
    return estimate_rtm(
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        platform=platform,
        options=tuned_options(persona, case, platform),
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )


def table4_row(case: CaseSpec) -> Row:
    """One seismic case's Table 4 row."""
    cpu_cray = cpu_rtm_time(
        CRAY_K40.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )
    cpu_ibm = cpu_rtm_time(
        IBM_M2090.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )
    return Row(
        name=case.name,
        cray_cray=make_cell(_estimate(case, CRAY_K40, CRAY_8_2_6), cpu_cray),
        cray_pgi=make_cell(_estimate(case, CRAY_K40, PGI_14_6), cpu_cray),
        ibm_pgi=make_cell(_estimate(case, IBM_M2090, PGI_14_3), cpu_ibm),
    )


def table4_rows(cases: tuple[CaseSpec, ...] = ALL_CASES) -> list[Row]:
    """All Table 4 rows."""
    return [table4_row(c) for c in cases]


def format_table4(rows: list[Row] | None = None) -> str:
    if rows is None:
        rows = table4_rows()
    return format_speedup_table(
        "Table 4: RTM timing and speedup measurements", rows
    )
