"""Table 4 — RTM timing and speedup measurements (same matrix as Table 3
for the full forward + backward migration)."""

from __future__ import annotations

from repro.acc.compiler import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompilerPersona
from repro.bench.report import Row, format_speedup_table
from repro.bench.table3 import apply_plan, make_cell, tuned_options
from repro.bench.workloads import ALL_CASES, CaseSpec
from repro.core.config import GpuTimes
from repro.core.platform import CRAY_K40, IBM_M2090, Platform
from repro.core.reference import cpu_rtm_time
from repro.core.rtm import estimate_rtm


def _estimate(
    case: CaseSpec, platform: Platform, persona: CompilerPersona, plan=None
) -> GpuTimes:
    options = apply_plan(
        tuned_options(persona, case, platform), case, persona, platform, plan
    )
    return estimate_rtm(
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        platform=platform,
        options=options,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )


def table4_row(case: CaseSpec, plan=None) -> Row:
    """One seismic case's Table 4 row."""
    cpu_cray = cpu_rtm_time(
        CRAY_K40.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )
    cpu_ibm = cpu_rtm_time(
        IBM_M2090.cluster,
        case.physics,
        case.shape,
        case.nt,
        case.snap_period,
        nreceivers=case.nreceivers,
        pml_variant=case.pml_variant,
    )
    return Row(
        name=case.name,
        cray_cray=make_cell(_estimate(case, CRAY_K40, CRAY_8_2_6, plan), cpu_cray),
        cray_pgi=make_cell(_estimate(case, CRAY_K40, PGI_14_6, plan), cpu_cray),
        ibm_pgi=make_cell(_estimate(case, IBM_M2090, PGI_14_3, plan), cpu_ibm),
    )


def table4_rows(
    cases: tuple[CaseSpec, ...] = ALL_CASES, plan=None
) -> list[Row]:
    """All Table 4 rows (``plan``: tuner overrides for its matching cell)."""
    return [table4_row(c, plan) for c in cases]


def format_table4(rows: list[Row] | None = None, plan=None) -> str:
    if rows is None:
        rows = table4_rows(plan=plan)
    return format_speedup_table(
        "Table 4: RTM timing and speedup measurements", rows
    )
