"""Static performance tuners over the device model.

* :func:`register_sweep` — the ``maxregcount`` study of the paper's
  Figure 10 (64 registers/thread optimal on both cards).
* :func:`vector_length_sweep` / :func:`predict_best_launch` — the
  prediction-based gang/vector tuning of the paper's reference [13]
  (Siddiqui & Feki), realised against the analytic cost model.
* :func:`async_comparison` — the async-streams study of Figure 11.

Everything here is *static*: purely model-driven, no probe runs. All
returned times are **simulated seconds**; occupancies are 0..1 fractions.
The closed-loop complement lives in :mod:`repro.optim.autotune`
(:func:`~repro.optim.autotune.tune_case`,
:func:`~repro.optim.autotune.run_probe`,
:class:`~repro.optim.autotune.TuningPlan`): it *measures* candidate
schedules from trace timelines and uses :func:`predict_best_launch` only to
warm-start the search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.kernelmodel import (
    KernelEstimate,
    LaunchConfig,
    estimate_kernel_time,
)
from repro.gpusim.specs import CUDA_5_0, CudaToolkit, GPUSpec
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError

DEFAULT_REGISTER_CANDIDATES = (16, 32, 64, 128, 255)
DEFAULT_VECTOR_CANDIDATES = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class RegisterSweepPoint:
    """One point of a maxregcount sweep.

    ``maxregcount`` is the *requested* compile-line value;
    ``effective_maxregcount`` is the value the card can actually honour
    (requests above the architecture's registers-per-thread ceiling are
    clamped). ``seconds`` is the modelled step time in simulated seconds;
    ``occupancy`` is a 0..1 time-weighted mean.
    """

    maxregcount: int
    seconds: float
    occupancy: float
    spilled_regs: int
    effective_maxregcount: int = -1

    def __post_init__(self):
        if self.effective_maxregcount < 0:
            object.__setattr__(self, "effective_maxregcount", self.maxregcount)


def register_sweep(
    spec: GPUSpec,
    workloads: list[KernelWorkload],
    candidates: tuple[int, ...] = DEFAULT_REGISTER_CANDIDATES,
    toolkit: CudaToolkit = CUDA_5_0,
    threads_per_block: int = 128,
) -> list[RegisterSweepPoint]:
    """Total modelled time of one step's kernels per maxregcount value
    (simulated seconds).

    Candidates above the card's registers-per-thread ceiling are clamped to
    it; candidates whose *effective* value was already swept are dropped
    rather than measured twice under different labels (e.g. 128 and 255
    both clamp to 63 on Fermi), so each returned point is a distinct
    hardware configuration with both the requested and effective counts.
    """
    if not workloads:
        raise ConfigurationError("register_sweep needs at least one workload")
    points = []
    seen_effective: set[int] = set()
    for reg in candidates:
        reg_eff = min(reg, spec.max_regs_per_thread)
        if reg_eff in seen_effective:
            continue
        seen_effective.add(reg_eff)
        total = 0.0
        occ = 0.0
        spilled = 0
        for w in workloads:
            est = estimate_kernel_time(
                spec,
                w,
                LaunchConfig(threads_per_block=threads_per_block, maxregcount=reg_eff),
                toolkit,
            )
            total += est.seconds
            occ += est.occupancy * est.seconds
            spilled = max(spilled, est.spilled_regs)
        points.append(
            RegisterSweepPoint(
                maxregcount=reg,
                seconds=total,
                occupancy=occ / total if total > 0 else 0.0,
                spilled_regs=spilled,
                effective_maxregcount=reg_eff,
            )
        )
    return points


def best_register_count(points: list[RegisterSweepPoint]) -> int:
    """The sweep's winner."""
    return min(points, key=lambda p: p.seconds).maxregcount


def vector_length_sweep(
    spec: GPUSpec,
    workload: KernelWorkload,
    candidates: tuple[int, ...] = DEFAULT_VECTOR_CANDIDATES,
    maxregcount: int | None = 64,
    toolkit: CudaToolkit = CUDA_5_0,
) -> dict[int, KernelEstimate]:
    """Model the kernel at each OpenACC vector length (threads/block)."""
    out: dict[int, KernelEstimate] = {}
    for v in candidates:
        if v > spec.max_threads_per_block:
            continue
        out[v] = estimate_kernel_time(
            spec,
            workload,
            LaunchConfig(threads_per_block=v, maxregcount=maxregcount),
            toolkit,
        )
    if not out:
        raise ConfigurationError("no admissible vector lengths")
    return out


def predict_best_launch(
    spec: GPUSpec,
    workload: KernelWorkload,
    maxregcount: int | None = 64,
    toolkit: CudaToolkit = CUDA_5_0,
) -> tuple[LaunchConfig, KernelEstimate]:
    """Prediction-based gang/vector tuning (ref [13] of the paper): pick the
    vector length the model says is fastest."""
    sweep = vector_length_sweep(spec, workload, maxregcount=maxregcount, toolkit=toolkit)
    best_v = min(sweep, key=lambda v: sweep[v].seconds)
    return (
        LaunchConfig(threads_per_block=best_v, maxregcount=maxregcount),
        sweep[best_v],
    )


@dataclass(frozen=True)
class FusedLaunchEstimate:
    """Modelled price of one fused launch vs its unfused parts.

    All times are simulated seconds and *include* the host-side launch
    overhead (``spec.launch_overhead_s`` per launch) — that overhead is
    the whole point of fusion, so unlike the per-kernel roofline numbers
    it cannot be left out here. ``effective_maxregcount`` is the register
    cap the card actually honours for the merged body (requests above the
    architecture ceiling are clamped, exactly as in
    :func:`register_sweep`); the merged body's demand is higher than any
    part's — summed address streams — so a fused launch can spill where
    its parts did not, and ``saved_seconds`` may come out negative.
    """

    fused: KernelEstimate
    parts: tuple[KernelEstimate, ...]
    fused_seconds: float
    unfused_seconds: float
    effective_maxregcount: int | None

    @property
    def saved_seconds(self) -> float:
        """Positive when the fused launch is cheaper."""
        return self.unfused_seconds - self.fused_seconds


def fused_launch_estimate(
    spec: GPUSpec,
    workloads: list[KernelWorkload],
    maxregcount: int | None = None,
    threads_per_block: int = 128,
    toolkit: CudaToolkit = CUDA_5_0,
) -> FusedLaunchEstimate:
    """Price fusing ``workloads`` into one launch on ``spec``.

    The fused body comes from
    :func:`repro.optim.transformations.fuse_kernels` (totals preserved,
    register pressure merged); the launch-count delta is charged at
    ``spec.launch_overhead_s`` each. This is how the roofline/launch
    model prices a verified ``fuse-computes`` opportunity before
    :mod:`repro.compile` lowers it.
    """
    from repro.optim.transformations import fuse_kernels

    if len(workloads) < 2:
        raise ConfigurationError("fused_launch_estimate needs >= 2 workloads")
    reg_eff = (
        min(maxregcount, spec.max_regs_per_thread)
        if maxregcount is not None else None
    )
    launch = LaunchConfig(
        threads_per_block=threads_per_block, maxregcount=reg_eff
    )
    parts = tuple(
        estimate_kernel_time(spec, w, launch, toolkit) for w in workloads
    )
    fused = estimate_kernel_time(
        spec, fuse_kernels(*workloads), launch, toolkit
    )
    return FusedLaunchEstimate(
        fused=fused,
        parts=parts,
        fused_seconds=fused.seconds + spec.launch_overhead_s,
        unfused_seconds=(
            sum(p.seconds for p in parts)
            + len(parts) * spec.launch_overhead_s
        ),
        effective_maxregcount=reg_eff,
    )


@dataclass(frozen=True)
class AsyncComparison:
    """Synchronous vs asynchronous execution of one step's kernel set."""

    sync_seconds: float
    async_seconds: float

    @property
    def improvement(self) -> float:
        """Fractional time saved by async (>0 means async is faster)."""
        if self.sync_seconds == 0:
            return 0.0
        return 1.0 - self.async_seconds / self.sync_seconds


def async_comparison(
    spec: GPUSpec,
    workloads: list[KernelWorkload],
    steps: int = 100,
    enqueue_cost_factor: float = 1.0,
    toolkit: CudaToolkit = CUDA_5_0,
    maxregcount: int | None = 64,
) -> AsyncComparison:
    """Model ``steps`` iterations of the kernel set launched synchronously
    vs on round-robin async queues (paper Figure 11: the win is launch-gap
    packing; ``enqueue_cost_factor`` > 1 models PGI's expensive async
    path that made async a net loss there)."""
    from repro.gpusim.device import Device

    if not workloads:
        raise ConfigurationError("async_comparison needs at least one workload")
    # synchronous
    dev = Device(spec, toolkit=toolkit)
    for _ in range(steps):
        for w in workloads:
            dev.launch(w, LaunchConfig(maxregcount=maxregcount))
    sync_t = dev.elapsed
    # async round-robin + wait at step end
    dev = Device(spec, toolkit=toolkit)
    nq = max(1, min(len(workloads), spec.max_concurrent_kernels - 1))
    for _ in range(steps):
        for i, w in enumerate(workloads):
            dev.launch(
                w,
                LaunchConfig(maxregcount=maxregcount, async_queue=1 + (i % nq)),
                enqueue_cost_factor=enqueue_cost_factor,
            )
        dev.wait()
    async_t = dev.elapsed
    return AsyncComparison(sync_seconds=sync_t, async_seconds=async_t)


__all__ = [
    "DEFAULT_REGISTER_CANDIDATES",
    "DEFAULT_VECTOR_CANDIDATES",
    "RegisterSweepPoint",
    "register_sweep",
    "best_register_count",
    "vector_length_sweep",
    "predict_best_launch",
    "FusedLaunchEstimate",
    "fused_launch_estimate",
    "AsyncComparison",
    "async_comparison",
]
