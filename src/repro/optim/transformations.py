"""Code transformations over kernel workloads.

These operate on the :class:`~repro.propagators.base.KernelWorkload`
metadata — the shape the directive compiler and cost model see — mirroring
the source-level rewrites of the paper's Section 5.3 ("inlining,
permutation, fission, transposition, tiling, and collapsing").
"""

from __future__ import annotations

from dataclasses import replace

from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError


def loop_fission(workload: KernelWorkload, parts: int) -> list[KernelWorkload]:
    """Split one fused kernel into ``parts`` kernels, one per dimension /
    term group (the paper's Figure 12 rewrite of the acoustic 3-D kernel).

    Per-part arithmetic and traffic are divided evenly; the shared input
    stream (the field being differentiated, e.g. ``p``) is re-read by every
    part, so total traffic *rises* slightly while register pressure drops —
    the trade that pays on Fermi and not on Kepler.
    """
    if parts < 2:
        raise ConfigurationError("fission needs parts >= 2")
    if workload.address_streams < parts:
        raise ConfigurationError(
            f"cannot fission {workload.address_streams} streams into {parts} parts"
        )
    shared = 1  # the differentiated field stays in every part
    per_part_streams = max(
        2, shared + (workload.address_streams - shared) // parts
    )
    return [
        replace(
            workload,
            name=f"{workload.name}_fission{i}",
            flops_per_point=workload.flops_per_point / parts,
            reads_per_point=workload.reads_per_point / parts + shared,
            writes_per_point=workload.writes_per_point / parts,
            address_streams=per_part_streams,
        )
        for i in range(parts)
    ]


def mark_uncoalesced(workload: KernelWorkload) -> KernelWorkload:
    """The backward-phase original: inner parallel loop no longer walks
    unit-stride memory (Figure 13 'before')."""
    return replace(
        workload, name=workload.name + "_uncoalesced", inner_contiguous=False
    )


def with_transposition(workload: KernelWorkload) -> list[KernelWorkload]:
    """Figure 13 'after': transpose to a temporary on the GPU, run the now
    coalesced kernel, transpose back. Returns the three-kernel sequence."""
    from repro.propagators.workloads import transpose_workloads

    fixed = replace(
        workload, name=workload.name + "_transposed", inner_contiguous=True
    )
    to_tmp, from_tmp = transpose_workloads(workload.loop_dims)
    return [to_tmp, fixed, from_tmp]


def inline_receiver_loop(nreceivers: int) -> KernelWorkload:
    """Inlining the receiver-term routine so one kernel encapsulates the
    receiver loop (what CRAY managed and PGI refused)."""
    from repro.propagators.workloads import receiver_injection_workloads

    (w,) = receiver_injection_workloads(nreceivers, inlined=True)
    return w


def remove_branches(workload: KernelWorkload, extra_flops: float = 0.0) -> KernelWorkload:
    """The 'compute PML everywhere' rewrite: pay ``extra_flops`` per point
    to drop the data-dependent branches."""
    return replace(
        workload,
        name=workload.name + "_branchless",
        flops_per_point=workload.flops_per_point + extra_flops,
        has_branches=False,
    )


def fuse_kernels(
    *workloads: KernelWorkload, name: str | None = None
) -> KernelWorkload:
    """Merge two or more launches into one fused kernel body.

    The inverse of :func:`loop_fission`, and the workload-level form of a
    verified ``fuse-computes`` opportunity from
    :mod:`repro.analyze.dataflow`: one launch sweeps the union iteration
    space and performs every part's arithmetic and traffic. Totals are
    preserved — per-point rates are rescaled onto the widest part's point
    count — while per-launch overheads collapse to one. Register pressure
    is the *sum* of the parts' address streams (each part keeps its own
    live stencil pointers), which is exactly what makes fusion a trade
    and not a free win: :func:`repro.optim.tuning.fused_launch_estimate`
    prices both sides.
    """
    if len(workloads) < 2:
        raise ConfigurationError("fuse_kernels needs at least two workloads")
    widest = max(workloads, key=lambda w: w.points)
    points = widest.points
    total = lambda attr: sum(w.points * getattr(w, attr) for w in workloads)  # noqa: E731
    return replace(
        widest,
        name=name or "+".join(w.name for w in workloads),
        flops_per_point=total("flops_per_point") / points,
        reads_per_point=total("reads_per_point") / points,
        writes_per_point=total("writes_per_point") / points,
        address_streams=sum(w.address_streams for w in workloads),
        has_branches=any(w.has_branches for w in workloads),
        inner_contiguous=all(w.inner_contiguous for w in workloads),
        loop_carried=any(w.loop_carried for w in workloads),
        gather_axes=max(w.gather_axes for w in workloads),
    )


def collapse_nest(workload: KernelWorkload, levels: int) -> KernelWorkload:
    """Collapse ``levels`` loop levels into one iteration space (metadata
    view of the OpenACC ``collapse`` clause)."""
    if levels < 2 or levels > len(workload.loop_dims):
        raise ConfigurationError(
            f"collapse levels {levels} invalid for a {len(workload.loop_dims)}-deep nest"
        )
    dims = workload.loop_dims
    head = 1
    for d in dims[:levels]:
        head *= d
    return replace(
        workload,
        name=workload.name + f"_collapse{levels}",
        loop_dims=(head,) + dims[levels:],
    )


__all__ = [
    "loop_fission",
    "mark_uncoalesced",
    "with_transposition",
    "inline_receiver_loop",
    "remove_branches",
    "fuse_kernels",
    "collapse_nest",
]
