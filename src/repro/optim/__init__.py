"""The paper's optimization catalogue as reusable transformations and tuners."""

from repro.optim.transformations import (
    loop_fission,
    mark_uncoalesced,
    with_transposition,
    inline_receiver_loop,
    remove_branches,
    collapse_nest,
)
from repro.optim.tuning import (
    register_sweep,
    RegisterSweepPoint,
    vector_length_sweep,
    predict_best_launch,
    async_comparison,
    AsyncComparison,
)

__all__ = [
    "loop_fission",
    "mark_uncoalesced",
    "with_transposition",
    "inline_receiver_loop",
    "remove_branches",
    "collapse_nest",
    "register_sweep",
    "RegisterSweepPoint",
    "vector_length_sweep",
    "predict_best_launch",
    "async_comparison",
    "AsyncComparison",
]
