"""The paper's optimization catalogue as reusable transformations and tuners.

Two tuning regimes live here:

* **static** (:mod:`repro.optim.tuning`) — sweeps and predictions over the
  analytic cost model alone (the paper's hand-tuning workflow);
* **closed-loop** (:mod:`repro.optim.autotune`) — probe runs under a
  tracer, schedule search over observed timelines, and the
  :class:`~repro.optim.autotune.TuningPlan` artifact the pipeline applies
  per kernel (``python -m repro tune``).

All reported times are simulated seconds on the device clock.
"""

from repro.optim.autotune import (
    KernelObservation,
    KernelPlan,
    ProbeDegradedWarning,
    ProbeResult,
    ScheduleCandidate,
    TuneRequest,
    TuningPlan,
    extract_observations,
    load_plan,
    options_with_plan,
    run_probe,
    transfer_overlap_seconds,
    tune_case,
)
from repro.optim.transformations import (
    loop_fission,
    mark_uncoalesced,
    with_transposition,
    inline_receiver_loop,
    remove_branches,
    fuse_kernels,
    collapse_nest,
)
from repro.optim.tuning import (
    register_sweep,
    RegisterSweepPoint,
    best_register_count,
    vector_length_sweep,
    predict_best_launch,
    fused_launch_estimate,
    FusedLaunchEstimate,
    async_comparison,
    AsyncComparison,
)

__all__ = [
    # transformations
    "loop_fission",
    "mark_uncoalesced",
    "with_transposition",
    "inline_receiver_loop",
    "remove_branches",
    "fuse_kernels",
    "collapse_nest",
    # static tuners
    "register_sweep",
    "RegisterSweepPoint",
    "best_register_count",
    "vector_length_sweep",
    "predict_best_launch",
    "fused_launch_estimate",
    "FusedLaunchEstimate",
    "async_comparison",
    "AsyncComparison",
    # closed-loop tuner
    "KernelObservation",
    "KernelPlan",
    "ProbeDegradedWarning",
    "ProbeResult",
    "ScheduleCandidate",
    "TuneRequest",
    "TuningPlan",
    "extract_observations",
    "load_plan",
    "options_with_plan",
    "run_probe",
    "transfer_overlap_seconds",
    "tune_case",
]
