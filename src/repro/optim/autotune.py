"""Trace-driven closed-loop schedule auto-tuning.

The static tuners in :mod:`repro.optim.tuning` pick schedules from the
analytic occupancy/roofline model alone — the paper's hand-tuning workflow.
This module closes the loop the way Assis et al. (arXiv:1905.06975) and
Paul et al. (arXiv:1603.03971) argue for: schedules are chosen from
*observed* timelines.

The loop has four stages (``probe -> search -> plan -> apply``):

1. **Probe** — run a short window of the case in estimate mode under a
   :class:`~repro.trace.tracer.Tracer`, and read per-kernel observed
   seconds, occupancy, register spills and kernel/transfer overlap off the
   trace events (:func:`extract_observations`,
   :func:`transfer_overlap_seconds`) instead of calling the static
   :func:`~repro.gpusim.kernelmodel.estimate_kernel_time` directly. A trace
   without per-event occupancy degrades to the static model with a
   :class:`ProbeDegradedWarning`, never a crash.
2. **Search** — enumerate schedule candidates (compute construct, vector
   length, ``maxregcount``, async queueing), warm-started by the static
   :func:`~repro.optim.tuning.predict_best_launch` prediction, pruned by
   the :mod:`repro.analyze` schedule lint (a candidate the linter flags at
   error level is never probed), and measured by probing each survivor
   within a probe budget (:func:`tune_case`).
3. **Plan** — compose the per-kernel winners into a :class:`TuningPlan`
   JSON artifact that records, for every kernel, the chosen construct /
   vector length / queue plus the predicted-vs-observed model error
   (:meth:`TuningPlan.save` / :func:`load_plan`). The composed plan is
   re-probed; if composition loses to the best single candidate (or to the
   default schedule) the tuner falls back, so an applied plan is never
   slower than the default static schedule on the measured objective.
4. **Apply** — :func:`options_with_plan` attaches the plan to
   :class:`~repro.core.config.GPUOptions`; the offload pipeline's launch
   path consults :meth:`TuningPlan.entry_for` per kernel.

All times in this module are **simulated seconds** on the device clock
(the same time base as the speedup tables); fractions are 0..1.

CLI: ``python -m repro tune CASE [--budget N] [--out plan.json]``, then
``python -m repro tables --plan plan.json``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.acc.clauses import CompileFlags, LoopSchedule
from repro.acc.compiler import COMPILERS, PGI_14_6, CompilerPersona
from repro.analyze.framework import Severity
from repro.core.config import GPUOptions
from repro.core.platform import CRAY_K40, Platform
from repro.gpusim.kernelmodel import estimate_kernel_time
from repro.gpusim.specs import GPUSpec
from repro.trace.tracer import SPAN, TraceEvent, Tracer
from repro.utils.errors import ConfigurationError

PLAN_VERSION = 1

#: default number of measured probe runs in a search (baseline included;
#: the final plan-verification probe is extra)
DEFAULT_BUDGET = 8
#: default time steps per probe window — the directive pattern repeats each
#: step, so a short window observes every kernel of the schedule
PROBE_NT = 6
#: snapshot period of the probe window (small, so the d2h path fires too)
PROBE_SNAP = 3


class ProbeDegradedWarning(UserWarning):
    """A probe trace was missing per-kernel observability (e.g. occupancy
    annotations), so the tuner fell back to the static model for that
    quantity."""


# ----------------------------------------------------------------------
# probe extraction: trace events -> per-kernel observed stats
# ----------------------------------------------------------------------
@dataclass
class KernelObservation:
    """Observed behaviour of one kernel over a probe window.

    ``total_seconds``/``mean_seconds`` are simulated seconds summed/averaged
    over the window's launches; ``occupancy`` is the duration-weighted mean
    achieved occupancy (0..1, ``None`` when the trace carried no occupancy
    annotations); ``spilled_regs`` is the worst observed hard register
    spill (``None`` when unannotated); ``queues`` counts launches per async
    queue (queue ``None`` is the default stream).
    """

    name: str
    launches: int = 0
    total_seconds: float = 0.0
    occupancy: float | None = None
    spilled_regs: int | None = None
    queues: dict[int | None, int] = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.launches if self.launches else 0.0

    def preferred_queue(self) -> int | None:
        """The async queue this kernel most often landed on (None when it
        mostly ran on the default stream)."""
        if not self.queues:
            return None
        return max(self.queues.items(), key=lambda kv: kv[1])[0]

    def occupancy_or_static(self, static_occupancy: float) -> float:
        """Observed occupancy, degrading to the static model's value (with
        a :class:`ProbeDegradedWarning`) when the trace carried none."""
        if self.occupancy is None:
            warnings.warn(
                f"kernel '{self.name}': trace carried no occupancy "
                "annotations; falling back to the static occupancy model",
                ProbeDegradedWarning,
                stacklevel=2,
            )
            return static_occupancy
        return self.occupancy


def _queue_of(event: TraceEvent) -> int | None:
    track = event.track
    if track.startswith("queue:"):
        try:
            return int(track.split(":", 1)[1])
        except ValueError:  # pragma: no cover - malformed synthetic trace
            return None
    return None


def extract_observations(
    tracer: Tracer, warn_missing: bool = True
) -> dict[str, KernelObservation]:
    """Group a tracer's device kernel spans into per-kernel observations.

    Handles overlapping spans from different async queues (each span's
    duration is charged to its kernel independently). When ``warn_missing``
    and at least one kernel span lacks an ``occupancy`` annotation, a
    single :class:`ProbeDegradedWarning` is emitted and the affected
    kernels report ``occupancy=None`` so callers can degrade to the static
    model.
    """
    out: dict[str, KernelObservation] = {}
    occ_weight: dict[str, float] = {}
    missing_occ: set[str] = set()
    for ev in tracer.events:
        if ev.kind != SPAN or ev.cat != "kernel":
            continue
        obs = out.setdefault(ev.name, KernelObservation(ev.name))
        obs.launches += 1
        obs.total_seconds += ev.duration
        q = _queue_of(ev)
        obs.queues[q] = obs.queues.get(q, 0) + 1
        occ = ev.args.get("occupancy")
        if occ is None:
            missing_occ.add(ev.name)
        else:
            w = max(ev.duration, 1e-12)
            prev = (obs.occupancy or 0.0) * occ_weight.get(ev.name, 0.0)
            occ_weight[ev.name] = occ_weight.get(ev.name, 0.0) + w
            obs.occupancy = (prev + occ * w) / occ_weight[ev.name]
        spill = ev.args.get("spilled_regs")
        if spill is not None:
            obs.spilled_regs = max(obs.spilled_regs or 0, int(spill))
    for name in missing_occ:
        out[name].occupancy = None
    if missing_occ and warn_missing:
        warnings.warn(
            "trace kernels without occupancy annotations: "
            + ", ".join(sorted(missing_occ))
            + " — occupancy degrades to the static model",
            ProbeDegradedWarning,
            stacklevel=2,
        )
    return out


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def transfer_overlap_seconds(tracer: Tracer) -> tuple[float, float]:
    """``(overlap_seconds, transfer_seconds)`` between device kernel spans
    and PCIe copy spans (categories ``h2d``/``d2h``) — the comm/compute
    overlap the paper reads off the profiler timeline. Both values are
    simulated seconds; divide to get the overlapped fraction."""
    kernels: list[tuple[float, float]] = []
    copies: list[tuple[float, float]] = []
    for ev in tracer.events:
        if ev.kind != SPAN:
            continue
        if ev.cat == "kernel":
            kernels.append((ev.start, ev.end))
        elif ev.cat in ("h2d", "d2h"):
            copies.append((ev.start, ev.end))
    busy = _merge_intervals(kernels)
    overlap = 0.0
    transfer = 0.0
    for c0, c1 in copies:
        transfer += c1 - c0
        for k0, k1 in busy:
            if k0 >= c1:
                break
            lo, hi = max(c0, k0), min(c1, k1)
            if hi > lo:
                overlap += hi - lo
    return overlap, transfer


def observed_step_seconds(tracer: Tracer) -> tuple[float, int]:
    """``(mean_step_seconds, steps)`` from the pipeline's per-step phase
    spans (``forward_step`` + ``backward_step``), in simulated seconds per
    time step (RTM charges both phases to the step)."""
    fwd = [e for e in tracer.events if e.kind == SPAN and e.name == "forward_step"]
    bwd = [e for e in tracer.events if e.kind == SPAN and e.name == "backward_step"]
    steps = max(len(fwd), len(bwd))
    if steps == 0:
        return 0.0, 0
    total = sum(e.duration for e in fwd) + sum(e.duration for e in bwd)
    return total / steps, steps


# ----------------------------------------------------------------------
# candidates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleCandidate:
    """One point of the schedule search space.

    ``construct=None`` keeps the compiler persona's preferred lowering (the
    default static schedule); an explicit construct carries the matching
    explicit loop schedule at ``vector_length`` threads/block.
    ``maxregcount=None`` leaves registers unclamped.
    """

    construct: str | None = None
    vector_length: int | None = None
    maxregcount: int | None = 64
    async_kernels: bool | None = None

    @property
    def label(self) -> str:
        parts = [
            self.construct or "default",
            f"v{self.vector_length}" if self.vector_length else "vauto",
            f"r{self.maxregcount}" if self.maxregcount else "runlimited",
        ]
        if self.async_kernels:
            parts.append("async")
        return "/".join(parts)

    def loop_schedule(self) -> LoopSchedule | None:
        if self.construct is None:
            return None
        v = self.vector_length or 128
        if self.construct == "parallel":
            return LoopSchedule.gwv(vector_length=v)
        return LoopSchedule(independent=True, vector_length=v)

    def options(self, base: GPUOptions) -> GPUOptions:
        """The candidate applied on top of ``base`` (plan cleared — a probe
        measures the candidate itself)."""
        return replace(
            base,
            flags=replace(base.flags, maxregcount=self.maxregcount),
            construct=self.construct,
            schedule=self.loop_schedule(),
            async_kernels=self.async_kernels,
            plan=None,
        )


BASELINE = ScheduleCandidate()


def generate_candidates(
    spec: GPUSpec,
    persona: CompilerPersona,
    workloads: Iterable[Any],
    toolkit=None,
) -> list[ScheduleCandidate]:
    """The ranked candidate list, warm-started by the static prediction.

    Vector-length candidates are the static
    :func:`~repro.optim.tuning.predict_best_launch` winners of the case's
    kernels plus the 128/256 house defaults; registers sweep the Figure-10
    sweet spot and the unclamped point, pruned to the
    :func:`~repro.analyze.capacity.admissible_maxregcounts` the capacity
    prover cannot refute (a clamp the model proves both spills and is no
    faster never gets probed); both compute constructs and both async
    regimes are covered. The baseline (persona-default) candidate is
    always first. Ranking beyond the baseline is by modelled step time, so
    a small ``--budget`` probes the statically most promising schedules
    first.
    """
    from repro.analyze.capacity import admissible_maxregcounts
    from repro.optim.tuning import predict_best_launch

    toolkit = toolkit if toolkit is not None else persona.default_toolkit
    workloads = list(workloads)
    regcounts = admissible_maxregcounts(
        spec, workloads, (64, None), toolkit=toolkit
    )
    warm = set()
    for w in workloads:
        cfg, _ = predict_best_launch(spec, w, maxregcount=64, toolkit=toolkit)
        warm.add(cfg.threads_per_block)
    vectors = sorted(
        v for v in ({128, 256} | warm) if v <= spec.max_threads_per_block
    )
    constructs = [persona.preferred_construct()]
    constructs.append("parallel" if constructs[0] == "kernels" else "kernels")
    scored: list[tuple[float, ScheduleCandidate]] = []
    for construct in constructs:
        for v in vectors:
            for reg in regcounts:
                cand = ScheduleCandidate(construct, v, reg, None)
                flags = CompileFlags(maxregcount=reg)
                cost = 0.0
                for w in workloads:
                    cfg = persona.lower(
                        construct, w, cand.loop_schedule(), flags
                    )
                    cost += estimate_kernel_time(spec, w, cfg, toolkit).seconds
                scored.append((cost, cand))
    scored.sort(key=lambda sc: sc[0])
    ranked = [cand for _, cand in scored]
    # async variant of the statically best explicit schedule — measured, not
    # assumed (the paper's Figure 11: async wins on CRAY, loses on PGI)
    if ranked:
        ranked.insert(1, replace(ranked[0], async_kernels=True))
    return [BASELINE, *ranked]


# ----------------------------------------------------------------------
# probing
# ----------------------------------------------------------------------
@dataclass
class ProbeResult:
    """Measured outcome of one probe window."""

    candidate: ScheduleCandidate
    success: bool
    step_seconds: float = 0.0
    steps: int = 0
    kernels: dict[str, KernelObservation] = field(default_factory=dict)
    overlap_seconds: float = 0.0
    transfer_seconds: float = 0.0
    total_seconds: float = 0.0
    failure: str | None = None

    @property
    def overlap_fraction(self) -> float:
        if self.transfer_seconds <= 0:
            return 0.0
        return self.overlap_seconds / self.transfer_seconds


@dataclass(frozen=True)
class TuneRequest:
    """One case's tuning problem: what to probe and how hard."""

    physics: str
    shape: tuple[int, ...]
    mode: str = "rtm"
    platform: Platform = CRAY_K40
    base_options: GPUOptions = field(default_factory=GPUOptions)
    nt: int = PROBE_NT
    snap_period: int = PROBE_SNAP
    nreceivers: int = 16
    space_order: int = 8
    boundary_width: int = 8
    pml_variant: str = "restructured"

    def __post_init__(self):
        if self.mode not in ("modeling", "rtm"):
            raise ConfigurationError(
                f"mode must be 'modeling' or 'rtm', not '{self.mode}'"
            )
        if self.nt < 1:
            raise ConfigurationError("probe nt must be >= 1")


def run_probe(request: TuneRequest, options: GPUOptions) -> ProbeResult:
    """Run one probe window of ``request`` under ``options`` with a tracer
    attached, and reduce the trace to a :class:`ProbeResult`. The physics is
    never run — probes drive the offload pipeline in estimate mode, so a
    probe of a paper-scale grid costs milliseconds of host time."""
    from repro.core.modeling import estimate_modeling
    from repro.core.rtm import estimate_rtm

    tracer = Tracer()
    kwargs = dict(
        platform=request.platform,
        options=options,
        nreceivers=request.nreceivers,
        space_order=request.space_order,
        boundary_width=request.boundary_width,
        pml_variant=request.pml_variant,
        tracer=tracer,
    )
    if request.mode == "modeling":
        gpu = estimate_modeling(
            request.physics, request.shape, request.nt, request.snap_period,
            snapshot_decimate=4, **kwargs,
        )
    else:
        gpu = estimate_rtm(
            request.physics, request.shape, request.nt, request.snap_period,
            **kwargs,
        )
    cand = getattr(options, "_candidate", BASELINE)
    if not gpu.success:
        return ProbeResult(cand, success=False, failure=gpu.failure)
    step_seconds, steps = observed_step_seconds(tracer)
    overlap, transfer = transfer_overlap_seconds(tracer)
    return ProbeResult(
        candidate=cand,
        success=True,
        step_seconds=step_seconds,
        steps=steps,
        kernels=extract_observations(tracer, warn_missing=False),
        overlap_seconds=overlap,
        transfer_seconds=transfer,
        total_seconds=gpu.total,
    )


def lint_gate(
    request: TuneRequest, options: GPUOptions
) -> tuple[bool, list[str]]:
    """Schedule-lint pruning: record a tiny dry run of this candidate's
    directive schedule and refuse it on error-level findings. Returns
    ``(ok, error_rules)``."""
    from repro.analyze.drivers import lint_pipeline

    result = lint_pipeline(
        request.physics,
        request.shape,
        request.mode,
        nt=4,
        snap_period=2,
        options=options,
        platform=request.platform,
        nreceivers=request.nreceivers,
        space_order=request.space_order,
        boundary_width=request.boundary_width,
        pml_variant=request.pml_variant,
    )
    errors = [
        d.rule for d in result.diagnostics if d.severity >= Severity.ERROR
    ]
    return (not errors, sorted(set(errors)))


# ----------------------------------------------------------------------
# the plan artifact
# ----------------------------------------------------------------------
@dataclass
class KernelPlan:
    """One kernel's tuned launch choice plus its model-error record.

    ``predicted_seconds`` is the static model's per-launch estimate for the
    chosen schedule, ``observed_seconds`` the probe's per-launch mean (both
    simulated seconds); ``model_error`` is their signed relative error
    ``(predicted - observed) / observed``.
    """

    kernel: str
    construct: str
    vector_length: int
    queue: int | None = None
    predicted_seconds: float | None = None
    observed_seconds: float | None = None
    model_error: float | None = None
    occupancy: float | None = None
    spilled_regs: int | None = None

    def loop_schedule(self) -> LoopSchedule:
        if self.construct == "parallel":
            return LoopSchedule.gwv(vector_length=self.vector_length)
        return LoopSchedule(independent=True, vector_length=self.vector_length)

    def to_json(self) -> dict:
        return {
            "kernel": self.kernel,
            "construct": self.construct,
            "vector_length": self.vector_length,
            "queue": self.queue,
            "predicted_seconds": self.predicted_seconds,
            "observed_seconds": self.observed_seconds,
            "model_error": self.model_error,
            "occupancy": self.occupancy,
            "spilled_regs": self.spilled_regs,
        }

    @staticmethod
    def from_json(data: dict) -> "KernelPlan":
        return KernelPlan(
            kernel=data["kernel"],
            construct=data["construct"],
            vector_length=int(data["vector_length"]),
            queue=data.get("queue"),
            predicted_seconds=data.get("predicted_seconds"),
            observed_seconds=data.get("observed_seconds"),
            model_error=data.get("model_error"),
            occupancy=data.get("occupancy"),
            spilled_regs=data.get("spilled_regs"),
        )


@dataclass
class TuningPlan:
    """The tuner's output artifact: per-kernel schedule choices, the global
    register/async choice, and the measured evidence behind them.

    All times are simulated seconds. ``baseline_step_seconds`` /
    ``tuned_step_seconds`` are per-time-step means from the probe windows
    (the plan is only emitted when tuned <= baseline on that objective);
    per-kernel predicted-vs-observed errors make the static model's
    accuracy itself a reported metric.
    """

    case: str
    mode: str
    platform: str
    compiler: str
    maxregcount: int | None
    async_kernels: bool | None
    kernels: dict[str, KernelPlan]
    baseline_step_seconds: float
    tuned_step_seconds: float
    transfer_overlap_fraction: float = 0.0
    probes: int = 0
    budget: int = 0
    pruned: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    version: int = PLAN_VERSION

    # -- application ----------------------------------------------------
    def entry_for(self, kernel: str) -> KernelPlan | None:
        """The per-kernel override the pipeline's launch path consults."""
        return self.kernels.get(kernel)

    @property
    def improvement(self) -> float:
        """Fraction of baseline step time saved (>= 0 by construction)."""
        if self.baseline_step_seconds <= 0:
            return 0.0
        return 1.0 - self.tuned_step_seconds / self.baseline_step_seconds

    @property
    def mean_abs_model_error(self) -> float | None:
        errs = [
            abs(k.model_error)
            for k in self.kernels.values()
            if k.model_error is not None
        ]
        return sum(errs) / len(errs) if errs else None

    # -- serialization ---------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": self.version,
            "case": self.case,
            "mode": self.mode,
            "platform": self.platform,
            "compiler": self.compiler,
            "maxregcount": self.maxregcount,
            "async_kernels": self.async_kernels,
            "baseline_step_seconds": self.baseline_step_seconds,
            "tuned_step_seconds": self.tuned_step_seconds,
            "improvement": self.improvement,
            "transfer_overlap_fraction": self.transfer_overlap_fraction,
            "mean_abs_model_error": self.mean_abs_model_error,
            "probes": self.probes,
            "budget": self.budget,
            "pruned": list(self.pruned),
            "notes": list(self.notes),
            "kernels": {
                name: k.to_json() for name, k in sorted(self.kernels.items())
            },
        }

    @staticmethod
    def from_json(data: dict) -> "TuningPlan":
        version = data.get("version")
        if version != PLAN_VERSION:
            raise ConfigurationError(
                f"unsupported tuning-plan version {version!r} "
                f"(expected {PLAN_VERSION})"
            )
        return TuningPlan(
            case=data["case"],
            mode=data["mode"],
            platform=data["platform"],
            compiler=data["compiler"],
            maxregcount=data.get("maxregcount"),
            async_kernels=data.get("async_kernels"),
            kernels={
                name: KernelPlan.from_json(k)
                for name, k in data.get("kernels", {}).items()
            },
            baseline_step_seconds=data["baseline_step_seconds"],
            tuned_step_seconds=data["tuned_step_seconds"],
            transfer_overlap_fraction=data.get("transfer_overlap_fraction", 0.0),
            probes=data.get("probes", 0),
            budget=data.get("budget", 0),
            pruned=list(data.get("pruned", ())),
            notes=list(data.get("notes", ())),
            version=PLAN_VERSION,
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2, sort_keys=False)
            f.write("\n")

    # -- reporting -------------------------------------------------------
    def summary_text(self) -> str:
        lines = [
            f"TuningPlan — {self.case} ({self.mode}) on {self.platform} / "
            f"{self.compiler}",
            f"  maxregcount {self.maxregcount}  async {self.async_kernels}",
            f"  step time: default {self.baseline_step_seconds * 1e3:.4g} ms"
            f" -> tuned {self.tuned_step_seconds * 1e3:.4g} ms"
            f" ({100 * self.improvement:.1f}% saved)",
            f"  transfer overlap {100 * self.transfer_overlap_fraction:.1f}%"
            f"  probes {self.probes}/{self.budget}",
        ]
        err = self.mean_abs_model_error
        if err is not None:
            lines.append(f"  static-model mean |error| {100 * err:.1f}%")
        if self.pruned:
            lines.append("  lint-pruned: " + ", ".join(self.pruned))
        for name, k in sorted(self.kernels.items()):
            obs = (
                f"{k.observed_seconds * 1e6:.3g} us"
                if k.observed_seconds is not None
                else "n/a"
            )
            e = (
                f"{100 * k.model_error:+.0f}%"
                if k.model_error is not None
                else "n/a"
            )
            q = f" q{k.queue}" if k.queue is not None else ""
            lines.append(
                f"    {name:<28} {k.construct:<8} v{k.vector_length:<5}{q}"
                f" obs {obs:<12} model {e}"
            )
        return "\n".join(lines)


def load_plan(path: str) -> TuningPlan:
    """Read a :class:`TuningPlan` JSON written by :meth:`TuningPlan.save`."""
    with open(path) as f:
        return TuningPlan.from_json(json.load(f))


def options_with_plan(base: GPUOptions, plan: TuningPlan) -> GPUOptions:
    """``base`` with the plan attached: per-kernel entries override the
    launch path, and the plan's global ``maxregcount``/async choices replace
    the flags-level ones."""
    return replace(
        base,
        flags=replace(base.flags, maxregcount=plan.maxregcount),
        async_kernels=plan.async_kernels,
        construct=None,
        schedule=None,
        plan=plan,
    )


# ----------------------------------------------------------------------
# the search
# ----------------------------------------------------------------------
def _case_workloads(request: TuneRequest) -> dict[str, Any]:
    """Name -> KernelWorkload map of every kernel the case's pipeline can
    launch (forward, backward, injection, imaging)."""
    from repro.core.modeling import _build_runtime
    from repro.core.pipeline import OffloadPipeline

    rt = _build_runtime(request.base_options, request.platform)
    p = OffloadPipeline(
        rt,
        request.physics,
        request.shape,
        nreceivers=request.nreceivers,
        space_order=request.space_order,
        boundary_width=request.boundary_width,
        options=request.base_options,
        pml_variant=request.pml_variant,
    )
    out: dict[str, Any] = {}
    for group in (
        p.forward_workloads,
        p.backward_workloads,
        p.backward_transpose,
        p.receiver_workloads,
        [p.source_workload],
        p.imaging_workloads,
    ):
        for w in group:
            out[w.name] = w
    return out


def _predicted_seconds(
    request: TuneRequest,
    persona: CompilerPersona,
    workload: Any,
    entry: KernelPlan,
    maxregcount: int | None,
) -> float:
    cfg = persona.lower(
        entry.construct,
        workload,
        entry.loop_schedule(),
        CompileFlags(maxregcount=maxregcount),
    )
    return estimate_kernel_time(
        request.platform.gpu, workload, cfg, persona.default_toolkit
    ).seconds


def _plan_entries(
    winner: ScheduleCandidate,
    per_kernel: dict[str, tuple[ScheduleCandidate, KernelObservation]],
    persona: CompilerPersona,
) -> dict[str, KernelPlan]:
    """Compose per-kernel entries: each kernel keeps the candidate that
    measured fastest for it (falling back to the overall winner's shape for
    the construct/vector of candidates that kept the persona default)."""
    entries: dict[str, KernelPlan] = {}
    for name, (cand, obs) in per_kernel.items():
        construct = cand.construct or persona.preferred_construct()
        vector = cand.vector_length or 128
        queue = obs.preferred_queue() if winner.async_kernels else None
        entries[name] = KernelPlan(
            kernel=name,
            construct=construct,
            vector_length=vector,
            queue=queue,
            observed_seconds=obs.mean_seconds,
            occupancy=obs.occupancy,
            spilled_regs=obs.spilled_regs,
        )
    return entries


def tune_case(
    request: TuneRequest,
    budget: int = DEFAULT_BUDGET,
    log: Callable[[str], None] | None = None,
) -> TuningPlan:
    """Run the closed loop for one case and return the winning plan.

    ``budget`` caps the number of measured probe runs in the search
    (baseline included; the final plan-verification probe is extra). The
    returned plan's ``tuned_step_seconds`` is never above
    ``baseline_step_seconds``: if neither a probed candidate nor the
    composed per-kernel plan beats the default static schedule, the plan
    degenerates to the baseline schedule (and says so in ``notes``).
    """
    if budget < 1:
        raise ConfigurationError("budget must be >= 1")
    log = log or (lambda msg: None)
    persona = request.base_options.compiler
    spec = request.platform.gpu
    workloads = _case_workloads(request)
    candidates = generate_candidates(
        spec, persona, workloads.values(), persona.default_toolkit
    )

    probes: list[ProbeResult] = []
    pruned: list[str] = []
    for cand in candidates:
        if len(probes) >= budget:
            break
        options = cand.options(request.base_options)
        options._candidate = cand  # annotate for run_probe's result
        if cand != BASELINE:
            ok, errors = lint_gate(request, options)
            if not ok:
                pruned.append(f"{cand.label}: {', '.join(errors)}")
                log(f"  pruned {cand.label} ({', '.join(errors)})")
                continue
        result = run_probe(request, options)
        if not result.success:
            pruned.append(f"{cand.label}: {result.failure}")
            log(f"  failed {cand.label} ({result.failure})")
            continue
        probes.append(result)
        log(
            f"  probed {cand.label}: {result.step_seconds * 1e3:.4g} ms/step"
        )
    if not probes or probes[0].candidate != BASELINE:
        raise ConfigurationError(
            "the baseline probe failed — nothing to tune against"
        )
    baseline = probes[0]
    best = min(probes, key=lambda p: p.step_seconds)

    # compose: per kernel, the candidate that measured fastest for it
    per_kernel: dict[str, tuple[ScheduleCandidate, KernelObservation]] = {}
    for p in probes:
        for name, obs in p.kernels.items():
            cur = per_kernel.get(name)
            if cur is None or obs.mean_seconds < cur[1].mean_seconds:
                per_kernel[name] = (p.candidate, obs)
    composed_entries = _plan_entries(best.candidate, per_kernel, persona)

    notes: list[str] = []
    plan = TuningPlan(
        case=f"{request.physics}-{len(request.shape)}d",
        mode=request.mode,
        platform=request.platform.name,
        compiler=persona.name,
        maxregcount=best.candidate.maxregcount,
        async_kernels=best.candidate.async_kernels,
        kernels=composed_entries,
        baseline_step_seconds=baseline.step_seconds,
        tuned_step_seconds=best.step_seconds,
        transfer_overlap_fraction=best.overlap_fraction,
        probes=len(probes),
        budget=budget,
        pruned=pruned,
        notes=notes,
    )

    # verification probe of the composed plan (extra, outside the budget)
    verify = run_probe(
        request, options_with_plan(request.base_options, plan)
    )
    chosen = best
    if verify.success and verify.step_seconds <= best.step_seconds:
        chosen = verify
        notes.append("composed per-kernel plan verified fastest")
        # refresh observed stats with the verification probe's timeline —
        # it measured the plan exactly as it will be applied
        for name, obs in verify.kernels.items():
            entry = plan.kernels.get(name)
            if entry is not None:
                entry.observed_seconds = obs.mean_seconds
                entry.occupancy = obs.occupancy
                entry.spilled_regs = obs.spilled_regs
    else:
        # composition lost: fall back to the best single candidate, with
        # every kernel on that candidate's schedule
        uniform = {
            name: (best.candidate, obs) for name, obs in best.kernels.items()
        }
        plan.kernels = _plan_entries(best.candidate, uniform, persona)
        notes.append("composed plan lost verification; kept best candidate")
    plan.tuned_step_seconds = min(chosen.step_seconds, baseline.step_seconds)
    plan.transfer_overlap_fraction = chosen.overlap_fraction
    if chosen.step_seconds > baseline.step_seconds:
        # nothing beat the default schedule: emit the baseline itself
        uniform = {
            name: (BASELINE, obs) for name, obs in baseline.kernels.items()
        }
        plan.kernels = _plan_entries(BASELINE, uniform, persona)
        plan.maxregcount = BASELINE.maxregcount
        plan.async_kernels = BASELINE.async_kernels
        plan.tuned_step_seconds = baseline.step_seconds
        plan.transfer_overlap_fraction = baseline.overlap_fraction
        notes.append("no candidate beat the default schedule; plan is baseline")

    # predicted-vs-observed: the static model's error per kernel
    for name, entry in plan.kernels.items():
        w = workloads.get(name)
        if w is None or entry.observed_seconds is None:
            continue
        entry.predicted_seconds = _predicted_seconds(
            request, persona, w, entry, plan.maxregcount
        )
        if entry.observed_seconds > 0:
            entry.model_error = (
                entry.predicted_seconds - entry.observed_seconds
            ) / entry.observed_seconds
    return plan


# ----------------------------------------------------------------------
# CLI driver: ``python -m repro tune``
# ----------------------------------------------------------------------
def request_for_case(
    case: str,
    mode: str = "rtm",
    platform: Platform = CRAY_K40,
    compiler: CompilerPersona | None = None,
    nt: int = PROBE_NT,
) -> TuneRequest:
    """A :class:`TuneRequest` for a named seed case (``acoustic-2d``,
    ``iso3d`` ... — same grammar as the trace CLI), at the benchmark
    inventory's paper-scale grid shape."""
    from repro.bench.workloads import modeling_case
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    spec = modeling_case(physics, ndim)
    base = GPUOptions(compiler=compiler if compiler is not None else PGI_14_6)
    return TuneRequest(
        physics=physics,
        shape=spec.shape,
        mode=mode,
        platform=platform,
        base_options=base,
        nt=nt,
        snap_period=PROBE_SNAP,
        nreceivers=min(16, spec.nreceivers),
        pml_variant=spec.pml_variant,
    )


def run_tune_command(args) -> int:
    """``python -m repro tune`` entry point (argparse namespace in)."""
    compiler = None
    if getattr(args, "compiler", None):
        try:
            compiler = COMPILERS[args.compiler]
        except KeyError:
            known = ", ".join(sorted(COMPILERS))
            raise ConfigurationError(
                f"unknown compiler '{args.compiler}' (expected one of: {known})"
            ) from None
    request = request_for_case(
        args.case, mode=args.mode, compiler=compiler, nt=args.nt
    )
    print(
        f"tuning {args.case} ({args.mode}) on {request.platform.name} / "
        f"{request.base_options.compiler.name}, budget {args.budget} probes"
    )
    from repro.observe import RunLog, append_run, ledger_path_from_args

    runlog = RunLog(command="tune", case=args.case, mode=args.mode,
                    ranks=1, budget=args.budget, nt=args.nt)
    with runlog.activate():
        plan = tune_case(request, budget=args.budget, log=print)
    plan.save(args.out)
    print()
    print(plan.summary_text())
    print(f"wrote {args.out}")
    ledger_path = ledger_path_from_args(args)
    record = append_run(
        ledger_path, runlog,
        {
            "baseline_step_seconds": plan.baseline_step_seconds,
            "tuned_step_seconds": plan.tuned_step_seconds,
            "improvement": plan.improvement,
            "transfer_overlap_fraction": plan.transfer_overlap_fraction,
            "probes": float(plan.probes),
        },
        plan=plan,
    )
    if record is not None:
        print(f"ledger {ledger_path} (run {record.run_id}, "
              f"plan {record.plan_hash})")
    return 0


__all__ = [
    "PLAN_VERSION",
    "DEFAULT_BUDGET",
    "PROBE_NT",
    "PROBE_SNAP",
    "ProbeDegradedWarning",
    "KernelObservation",
    "extract_observations",
    "transfer_overlap_seconds",
    "observed_step_seconds",
    "ScheduleCandidate",
    "BASELINE",
    "generate_candidates",
    "ProbeResult",
    "TuneRequest",
    "run_probe",
    "lint_gate",
    "KernelPlan",
    "TuningPlan",
    "load_plan",
    "options_with_plan",
    "tune_case",
    "request_for_case",
    "run_tune_command",
]
