"""The chaos campaign's artifact: :class:`ResilienceReport`.

One :class:`FaultOutcome` row per (case, fault spec) run; the report
aggregates them into the injected / detected / retried / restarted /
degraded / unrecovered ledger and renders as text or JSON. Deliberately
timestamp-free: identical seeds must produce byte-identical reports, so the
only time in here is the *simulated* recovery cost.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class FaultOutcome:
    """Outcome of one faulted run of one seed case."""

    case: str
    mode: str
    kind: str
    spec: str
    #: faults actually fired by the injector
    injected: int = 0
    #: the fault surfaced as a typed error (vs silently vanished)
    detected: bool = False
    #: operation-level retries spent
    retries: int = 0
    #: checkpoint restarts performed
    restarts: int = 0
    #: degradation action taken ('' when none): e.g. 're-plan:swap',
    #: 're-decompose:2->1', 'device-refresh'
    degraded: str = ""
    #: the run completed despite the fault
    recovered: bool = False
    #: final wavefield/image matches the fault-free reference
    equivalent: bool = False
    #: simulated seconds of recovery overhead (backoff + restart replay)
    recovery_cost_s: float = 0.0
    #: human-readable fault/action labels, in order
    events: tuple = ()
    notes: str = ""

    @property
    def ok(self) -> bool:
        return self.recovered and self.equivalent

    def action(self) -> str:
        """The headline recovery action for the text table."""
        if self.degraded:
            return f"degrade[{self.degraded}]"
        if self.restarts:
            return f"restart x{self.restarts}"
        if self.retries:
            return f"retry x{self.retries}"
        return "none" if self.injected == 0 else "?"


@dataclass
class ResilienceReport:
    """Aggregated chaos-campaign results."""

    seed: int
    ranks: int
    outcomes: list = field(default_factory=list)

    def add(self, outcome: FaultOutcome) -> None:
        self.outcomes.append(outcome)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        return sum(o.injected for o in self.outcomes)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def retried(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def restarted(self) -> int:
        return sum(o.restarts for o in self.outcomes)

    @property
    def degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def unrecovered(self) -> int:
        return sum(1 for o in self.outcomes if o.injected and not o.ok)

    @property
    def recovery_cost_s(self) -> float:
        return sum(o.recovery_cost_s for o in self.outcomes)

    def all_recovered(self) -> bool:
        return self.unrecovered == 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ranks": self.ranks,
            "summary": {
                "runs": len(self.outcomes),
                "injected": self.injected,
                "detected": self.detected,
                "retried": self.retried,
                "restarted": self.restarted,
                "degraded": self.degraded,
                "unrecovered": self.unrecovered,
                "recovery_cost_s": round(self.recovery_cost_s, 9),
            },
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        head = (
            f"resilience report  seed={self.seed} ranks={self.ranks} "
            f"runs={len(self.outcomes)}"
        )
        lines = [head, "=" * len(head)]
        widths = (14, 9, 22, 20, 9)
        hdr = ("case", "mode", "fault", "action", "result")
        lines.append("  ".join(h.ljust(w) for h, w in zip(hdr, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for o in self.outcomes:
            result = "OK" if o.ok else ("CLEAN" if o.injected == 0 else "FAIL")
            row = (o.case, o.mode, o.spec, o.action(), result)
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
            if o.notes:
                lines.append(f"    note: {o.notes}")
        lines.append("")
        lines.append(
            f"injected={self.injected} detected={self.detected} "
            f"retried={self.retried} restarted={self.restarted} "
            f"degraded={self.degraded} unrecovered={self.unrecovered}"
        )
        lines.append(
            f"recovery cost (simulated): {self.recovery_cost_s * 1e3:.3f} ms"
        )
        verdict = (
            "ALL RECOVERED" if self.all_recovered() else
            f"{self.unrecovered} RUN(S) UNRECOVERED"
        )
        lines.append(verdict)
        return "\n".join(lines)


__all__ = ["FaultOutcome", "ResilienceReport"]
