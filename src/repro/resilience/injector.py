"""The fault injector: arms a :class:`~repro.resilience.faults.FaultPlan`
against the simulated stack.

One injector serves a whole run (all ranks). Each layer consults it at its
natural operation boundary:

* :meth:`on_transfer` — from :func:`repro.gpusim.pcie.checked_transfer`
  (every modelled DMA, both directions);
* :meth:`on_kernel_launch` — from :meth:`repro.gpusim.device.Device.launch`;
* :meth:`on_allocate` — from :meth:`repro.gpusim.device.Device.allocate`;
* :meth:`on_message` — from :meth:`repro.mpisim.comm.RankComm.isend`
  (returns the delivery action: deliver / drop / duplicate / delay).

Operations are counted per category *per matching rank filter*, so a spec's
``op_index`` deterministically names one concrete operation of the run.
Fired injections are recorded as :class:`FaultEvent` rows and, when a
tracer is attached, emitted as instants on the dedicated ``resilience``
process so recovery overhead is readable straight off the Perfetto export.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.resilience.faults import (
    ECC,
    KERNEL_LAUNCH,
    MPI_DELAY,
    MPI_DROP,
    MPI_DUP,
    OOM,
    PCIE_PERMANENT,
    PCIE_TRANSIENT,
    RANK_DEAD,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    is_permanent,
)
from repro.utils.errors import (
    DeviceECCError,
    DeviceLostError,
    DeviceOutOfMemoryError,
    KernelLaunchError,
    PCIeTransferError,
)

#: trace process/track every fault and recovery action lands on
TRACE_PROCESS = "resilience"
FAULT_TRACK = "faults"


@dataclass
class _Armed:
    """Mutable firing state of one spec."""

    spec: FaultSpec
    fired: int = 0
    resolved: bool = False

    def should_fire(self, category: str, rank: int | None, count: int) -> bool:
        s = self.spec
        if self.resolved or s.category != category:
            return False
        if s.rank is not None and rank != s.rank:
            return False
        if count < s.op_index:
            return False
        if is_permanent(s.kind):
            return True  # every matching op from op_index until resolved
        # transient: 'count' consecutive ops starting at op_index
        if count >= s.op_index + s.count:
            return False
        return self.fired < s.count or count < s.op_index + s.count


class FaultInjector:
    """Deterministic fault injection armed with one :class:`FaultPlan`.

    With an empty plan the injector is a pure operation counter — the chaos
    harness runs the fault-free reference under one to learn the op-count
    envelope that seeds the campaign's injection points.
    """

    def __init__(self, plan: FaultPlan | None = None, tracer=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.tracer = tracer
        self._armed = [_Armed(s) for s in self.plan.specs if s.category]
        self._counts: Counter = Counter()
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def op_count(self, category: str, rank: int | None = None) -> int:
        """Operations seen so far in ``category`` (for ``rank``'s counter
        when given, else the any-rank counter)."""
        return self._counts[(category, rank)]

    def op_counts(self) -> dict[str, int]:
        """Any-rank operation totals per category — the envelope
        :meth:`FaultPlan.seeded` draws injection points from."""
        out: dict[str, int] = {}
        for (category, rank), n in self._counts.items():
            if rank is None:
                out[category] = n
        return out

    def _tick(self, category: str, rank: int | None) -> None:
        self._counts[(category, None)] += 1
        if rank is not None:
            self._counts[(category, rank)] += 1

    def _firing(self, category: str, rank: int | None) -> _Armed | None:
        for armed in self._armed:
            count = self._counts[(category, armed.spec.rank)]
            if armed.should_fire(category, rank, count):
                return armed
        return None

    def _record(self, armed: _Armed, category: str, rank: int | None,
                target: str, **detail) -> FaultEvent:
        armed.fired += 1
        ev = FaultEvent(
            kind=armed.spec.kind,
            category=category,
            op_index=self._counts[(category, armed.spec.rank)],
            rank=rank,
            target=target,
            detail=detail,
        )
        self.events.append(ev)
        if self.tracer is not None:
            self.tracer.instant(
                f"fault:{ev.kind}", process=TRACE_PROCESS, track=FAULT_TRACK,
                cat="fault", target=target, rank=rank, op=ev.op_index,
            )
        return ev

    # ------------------------------------------------------------------
    # recovery feedback
    # ------------------------------------------------------------------
    def resolve(self, *kinds: str, rank: int | None = None) -> int:
        """Mark armed specs of ``kinds`` resolved (the modelled repair a
        restart or degrade performs: link reset, card removed from the
        pool). Returns how many specs were resolved."""
        n = 0
        for armed in self._armed:
            if armed.resolved or armed.spec.kind not in kinds:
                continue
            if rank is not None and armed.spec.rank not in (None, rank):
                continue
            armed.resolved = True
            n += 1
        return n

    # ------------------------------------------------------------------
    # hooks (called by the instrumented layers)
    # ------------------------------------------------------------------
    def on_transfer(
        self, direction: str, name: str, nbytes: int, rank: int | None = None
    ) -> None:
        """PCIe DMA about to run; raises on an armed transfer fault."""
        self._tick("transfer", rank)
        armed = self._firing("transfer", rank)
        if armed is None:
            return
        kind = armed.spec.kind
        if kind in (PCIE_TRANSIENT, PCIE_PERMANENT):
            self._record(armed, "transfer", rank, name, nbytes=int(nbytes))
            raise PCIeTransferError(
                direction, name, nbytes,
                detail="injected " + ("permanent link fault"
                                      if kind == PCIE_PERMANENT
                                      else "transient fault"),
            )

    def on_kernel_launch(self, kernel: str, rank: int | None = None) -> None:
        """Kernel about to launch; raises on launch/ECC/dead-rank faults."""
        self._tick("launch", rank)
        armed = self._firing("launch", rank)
        if armed is None:
            return
        kind = armed.spec.kind
        if kind == KERNEL_LAUNCH:
            self._record(armed, "launch", rank, kernel)
            raise KernelLaunchError(kernel, detail="injected")
        if kind == ECC:
            self._record(armed, "launch", rank, kernel)
            raise DeviceECCError(where=f"kernel '{kernel}'")
        if kind == RANK_DEAD:
            self._record(armed, "launch", rank, kernel)
            raise DeviceLostError(rank=rank)

    def on_allocate(self, name: str, nbytes: int, memory,
                    rank: int | None = None) -> None:
        """Device allocation about to run; raises an (enriched) OOM when an
        allocation fault is armed. ``memory`` is the device's
        :class:`~repro.gpusim.memory.DeviceMemory` — the injected error
        carries its real live-allocation table."""
        self._tick("alloc", rank)
        armed = self._firing("alloc", rank)
        if armed is None:
            return
        if armed.spec.kind == OOM:
            self._record(armed, "alloc", rank, name, nbytes=int(nbytes))
            raise DeviceOutOfMemoryError(
                int(nbytes), 0, memory.usable,
                allocations=memory.allocation_table(), request_name=name,
            )

    def on_message(
        self, rank: int, dest: int, tag: int, nbytes: int
    ) -> str:
        """MPI send about to enqueue; returns the delivery action:
        ``'deliver'`` | ``'drop'`` | ``'duplicate'`` | ``'delay'``."""
        self._tick("message", rank)
        armed = self._firing("message", rank)
        if armed is None:
            return "deliver"
        kind = armed.spec.kind
        action = {MPI_DROP: "drop", MPI_DUP: "duplicate", MPI_DELAY: "delay"}
        if kind in action:
            self._record(
                armed, "message", rank, f"->{dest}#{tag}", nbytes=int(nbytes)
            )
            return action[kind]
        return "deliver"

    # ------------------------------------------------------------------
    # binding helpers
    # ------------------------------------------------------------------
    def bound(self, rank: int | None) -> "BoundInjector":
        """A rank-tagged view for one card's hooks."""
        return BoundInjector(self, rank)

    def attach_device(self, device, rank: int | None = None) -> None:
        """Install this injector on a simulated device's hook point."""
        device.injector = self.bound(rank)

    def attach_mpi(self, mpi) -> None:
        """Install this injector on a message-passing world."""
        mpi.injector = self


class BoundInjector:
    """Per-rank adapter: the device-side hooks with the rank baked in."""

    def __init__(self, injector: FaultInjector, rank: int | None):
        self.injector = injector
        self.rank = rank

    def on_transfer(self, direction: str, name: str, nbytes: int) -> None:
        self.injector.on_transfer(direction, name, nbytes, rank=self.rank)

    def on_kernel_launch(self, kernel: str) -> None:
        self.injector.on_kernel_launch(kernel, rank=self.rank)

    def on_allocate(self, name: str, nbytes: int, memory) -> None:
        self.injector.on_allocate(name, nbytes, memory, rank=self.rank)


__all__ = [
    "FaultInjector", "BoundInjector", "TRACE_PROCESS", "FAULT_TRACK",
]
