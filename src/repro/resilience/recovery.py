"""The recovery layer: guarded pipelines that survive injected faults.

Three mechanisms, applied in escalation order (the degradation ladder):

1. **Retry with capped exponential backoff** — transient faults
   (:class:`~repro.utils.errors.PCIeTransferError`,
   :class:`~repro.utils.errors.KernelLaunchError`, a failed halo exchange).
   Backoff delays are deterministic — seeded jitter, charged to the
   *simulated* clock, never wall time.
2. **Restart from the last periodic checkpoint** — when retries exhaust, or
   immediately on an uncorrectable ECC event (device data is corrupt, so
   re-running the op would read garbage). This is the *executed* form of
   :mod:`repro.core.checkpointing`: :class:`CheckpointStore` saves real
   wavefield + C-PML + image state on the
   :func:`~repro.core.checkpointing.plan_checkpoints` schedule and restores
   it bit-for-bit, so the replay reproduces the fault-free run exactly.
3. **Graceful degradation** — permanent capacity loss. A mid-run device OOM
   re-plans residency via :func:`~repro.core.offload_plan.plan_offload`
   (the Figure-4 swap / smaller resident set) and rebuilds the card's data;
   a dead rank re-decomposes the domain onto the surviving cards.

:class:`ResilientPipeline` wraps the single-card executed drivers
(:func:`~repro.core.modeling.run_modeling` /
:func:`~repro.core.rtm.run_rtm` semantics, physics bit-identical);
:class:`ResilientMultiGpu` wraps the decomposed
:class:`~repro.core.multigpu.MultiGpuPipeline` path with a real (simple,
deterministic, ghost-dependent) host physics so halo faults are observable
in the answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpointing import plan_checkpoints
from repro.core.config import (
    GPUOptions,
    ModelingConfig,
    ModelingResult,
    RTMConfig,
    RTMResult,
)
from repro.core.imaging import (
    cross_correlation_update,
    illumination_update,
    mute_shallow,
    normalize_image,
)
from repro.core.modeling import (
    _build_runtime,
    _default_receivers,
    _default_source,
)
from repro.core.multigpu import MultiGpuPipeline
from repro.core.offload_plan import plan_offload
from repro.core.pipeline import OffloadPipeline
from repro.core.platform import CRAY_K40, Platform
from repro.core.snapshots import SnapshotStore, default_snap_period
from repro.observe import runlog
from repro.propagators.factory import make_propagator
from repro.resilience.faults import OOM, PCIE_PERMANENT, RANK_DEAD
from repro.resilience.injector import TRACE_PROCESS, FaultInjector
from repro.trace.tracer import NULL_TRACER
from repro.utils.errors import (
    CommunicationError,
    ConfigurationError,
    DeviceECCError,
    DeviceLostError,
    DeviceOutOfMemoryError,
    KernelLaunchError,
    PCIeTransferError,
    ReproError,
)

RECOVERY_TRACK = "recovery"

#: faults where retrying the same operation can succeed
_TRANSIENT = (PCIeTransferError, KernelLaunchError)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    ``delay(attempt)`` = ``base_delay_s * factor**attempt`` stretched by up
    to ``jitter`` (drawn from the policy's own RNG stream). Delays are
    charged to the simulated device clock — never wall time — so identical
    seeds reproduce identical recovery timelines.
    """

    max_retries: int = 3
    base_delay_s: float = 1e-3
    factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = self.base_delay_s * self.factor ** min(attempt, 16)
        return base * (1.0 + self.jitter * rng.random())


class CheckpointStore:
    """Executed periodic checkpointing on a
    :func:`~repro.core.checkpointing.plan_checkpoints` schedule.

    Checkpoints are taken at loop-iteration boundaries: index ``0`` (the
    pristine state) plus every ``period``-th boundary the plan's budget
    keeps. The observable wavefield payload lives in a
    :class:`~repro.core.snapshots.SnapshotStore`; the full state dict
    (propagator fields, C-PML memory, accumulated image/illumination)
    rides alongside under the same key.
    """

    def __init__(self, nt: int, period: int, budget: int | None = None):
        if nt < 1:
            raise ConfigurationError("nt must be >= 1")
        self.period = max(1, int(period))
        nstates = nt // self.period
        self.plan = None
        steps = {0}
        if nstates >= 1:
            budget = nstates if budget is None else max(1, int(budget))
            self.plan = plan_checkpoints(nt, self.period, budget)
            steps |= {
                (k + 1) * self.period
                for k in self.plan.stored_indices
                if (k + 1) * self.period < nt
            }
        self._steps = steps
        self.wavefields = SnapshotStore(self.period)
        self._states: dict[int, dict] = {}
        self.saves = 0

    def is_checkpoint_step(self, step: int) -> bool:
        """Whether a checkpoint is due at the top of iteration ``step``."""
        return step in self._steps

    def save(self, step: int, observable: np.ndarray, state: dict) -> None:
        self.wavefields.save(step, observable)
        self._states[step] = state
        self.saves += 1

    def latest(self, at_or_before: int) -> int:
        """Most recent stored step <= ``at_or_before`` (0 always exists
        once the run has started)."""
        stored = [s for s in self._states if s <= at_or_before]
        if not stored:
            raise ConfigurationError(
                f"no checkpoint at or before step {at_or_before}"
            )
        return max(stored)

    def load(self, step: int) -> dict:
        return self._states[step]

    def nbytes(self) -> int:
        aux = sum(
            sum(a.nbytes for a in st.get("fields", {}).values())
            for st in self._states.values()
        )
        return self.wavefields.nbytes() + aux


@dataclass
class RecoveryStats:
    """What recovery did during one guarded run."""

    detected: int = 0
    retries: int = 0
    restarts: int = 0
    degraded: list = field(default_factory=list)
    #: simulated seconds spent on recovery actions (backoff waits +
    #: residency teardown/rebuild), excluding replayed compute
    recovery_cost_s: float = 0.0
    actions: list = field(default_factory=list)

    def note(self, action: str, kind: str = "action") -> None:
        self.actions.append(action)
        # recovery actions land in the ambient run ledger record too, so
        # a chaos/serve campaign's retries/restarts/degrades are queryable
        # next to the run's reduced metrics (no-op outside a run scope);
        # the per-kind counters are what `report --check` trends
        runlog.emit("recovery", action=action, action_kind=kind)
        runlog.count("recovery.actions")
        if kind != "action":
            runlog.count(f"recovery.{kind}s")

    def counts(self) -> dict:
        """Flat recovery counters (ledger-metric shaped)."""
        return {
            "recovery_retries": float(self.retries),
            "recovery_restarts": float(self.restarts),
            "recovery_degrades": float(len(self.degraded)),
            "recovery_cost_s": float(self.recovery_cost_s),
        }

    def absorb(self, other: "RecoveryStats") -> None:
        """Fold another guarded run's stats into this aggregate (the
        service's per-worker totals across shots)."""
        self.detected += other.detected
        self.retries += other.retries
        self.restarts += other.restarts
        self.degraded.extend(other.degraded)
        self.recovery_cost_s += other.recovery_cost_s
        self.actions.extend(other.actions)


class _RestartNeeded(ReproError):
    """Internal: escalate from op-level retry to checkpoint restart."""

    def __init__(self, cause: Exception):
        super().__init__(str(cause))
        self.cause = cause


class _Guard:
    """Shared op-level retry/degrade machinery."""

    def __init__(
        self,
        injector: FaultInjector,
        backoff: BackoffPolicy,
        stats: RecoveryStats,
        tracer,
        clock,
        mode: str,
    ):
        self.injector = injector
        self.backoff = backoff
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clock = clock
        self.mode = mode
        self._rng = backoff.rng()

    def _wait(self, attempt: int) -> None:
        delay = self.backoff.delay(attempt, self._rng)
        self.clock.advance(delay, "recovery")
        self.stats.recovery_cost_s += delay

    def _span(self, name, **args):
        return self.tracer.span(
            name, process=TRACE_PROCESS, track=RECOVERY_TRACK, cat="recovery",
            **args,
        )

    def run(self, label: str, op, pipeline: OffloadPipeline, phase: str,
            reset=None):
        """Run ``op`` under the ladder. ``phase`` is the pipeline phase the
        op expects; a degrade rebuilds residency to it before retrying.
        ``reset`` (when given) undoes a partial op before a retry —
        residency-building ops are not idempotent, so a transfer fault
        halfway through ``allocate_forward`` must tear down the partial
        present-table before re-entering."""
        attempt = 0
        while True:
            try:
                return op()
            except _TRANSIENT as exc:
                self.stats.detected += 1
                if attempt >= self.backoff.max_retries:
                    raise _RestartNeeded(exc)
                with self._span(f"retry:{label}", attempt=attempt, error=str(exc)):
                    if reset is not None:
                        reset()
                    self._wait(attempt)
                attempt += 1
                self.stats.retries += 1
                self.stats.note(f"retry {label} (attempt {attempt}): {exc}", kind="retry")
            except DeviceECCError as exc:
                # device memory is corrupt — re-running the op would compute
                # on garbage; only a checkpoint restart re-uploads good state
                self.stats.detected += 1
                self.stats.note(f"ecc during {label}: {exc}", kind="detect")
                raise _RestartNeeded(exc)
            except DeviceOutOfMemoryError as exc:
                self.stats.detected += 1
                self.degrade_oom(label, exc, pipeline, phase)
                self.stats.retries += 1

    def degrade_oom(
        self, label: str, exc: Exception, pipeline: OffloadPipeline, phase: str
    ) -> None:
        """The OOM rung: drop residency, consult the offload planner for
        the strategy this card *can* afford, rebuild, and let the caller
        retry the op."""
        plan = plan_offload(
            pipeline.physics,
            pipeline.shape,
            pipeline.rt.device.spec,
            boundary_width=pipeline.boundary_width,
            rtm=self.mode == "rtm",
        )
        with self._span(
            f"degrade:{label}", strategy=plan.strategy, error=str(exc),
        ):
            t0 = self.clock.now
            pipeline.drop_residency()
            self.injector.resolve(OOM)
            pipeline.restore_residency(phase)
            self.stats.recovery_cost_s += self.clock.now - t0
        action = f"re-plan:{plan.strategy}"
        self.stats.degraded.append(action)
        self.stats.note(f"degrade {label}: {action} ({exc})", kind="degrade")


class ResilientPipeline:
    """Fault-tolerant executed modeling/RTM on one simulated card.

    With an empty fault plan this runs *exactly* the plain drivers'
    operation sequence — the physics is bitwise identical and the device
    timeline matches to the last launch (checkpoint capture is pure host
    work). With faults armed, recovery guarantees the same final answer.

    Parameters
    ----------
    config:
        :class:`ModelingConfig` (for :meth:`run_modeling`) or
        :class:`RTMConfig` (for :meth:`run_rtm`).
    gpu_options / platform / tracer:
        As for the plain drivers; the pipeline is always attached (faults
        inject through device operations).
    injector:
        The armed :class:`FaultInjector` (one is built from ``plan`` when
        omitted).
    backoff:
        Retry policy (deterministic defaults).
    checkpoint_period:
        Loop iterations between checkpoints (default: ``nt // 4``, min 1).
    checkpoint_budget:
        Max stored checkpoints (:func:`plan_checkpoints` spreads them);
        ``None`` keeps every periodic one.
    max_restarts:
        Restart budget before the run is declared unrecoverable (the
        original fault is re-raised).
    """

    def __init__(
        self,
        config: ModelingConfig,
        gpu_options: GPUOptions | None = None,
        platform: Platform = CRAY_K40,
        tracer=None,
        injector: FaultInjector | None = None,
        plan=None,
        backoff: BackoffPolicy | None = None,
        checkpoint_period: int | None = None,
        checkpoint_budget: int | None = None,
        max_restarts: int = 4,
    ):
        if config.model is None:
            raise ConfigurationError("ResilientPipeline needs an EarthModel")
        self.config = config
        self.options = gpu_options if gpu_options is not None else GPUOptions()
        self.platform = platform
        self.tracer = tracer
        if injector is None:
            injector = FaultInjector(plan, tracer=tracer)
        self.injector = injector
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        period = checkpoint_period
        if period is None:
            period = max(1, config.nt // 4)
        self.checkpoint_period = period
        self.checkpoint_budget = checkpoint_budget
        self.max_restarts = int(max_restarts)
        self.stats = RecoveryStats()
        self.checkpoints: CheckpointStore | None = None
        self.backward_checkpoints: CheckpointStore | None = None

    # ------------------------------------------------------------------
    def _setup(self, physics: str):
        prop_kwargs = {}
        if physics == "isotropic":
            prop_kwargs["pml_variant"] = self.config.pml_variant
        prop = make_propagator(
            physics,
            self.config.model,
            dt=self.config.dt,
            space_order=self.config.space_order,
            boundary_width=self.config.boundary_width,
            **prop_kwargs,
        )
        rt = _build_runtime(self.options, self.platform, self.tracer)
        rt.attach_injector(self.injector)
        pipeline = OffloadPipeline(
            rt,
            physics,
            self.config.model.grid.shape,
            nreceivers=(
                self.config.receivers.count
                if self.config.receivers is not None
                else _default_receivers(self.config).count
            ),
            space_order=self.config.space_order,
            boundary_width=self.config.boundary_width,
            options=self.options,
            pml_variant=self.config.pml_variant,
        )
        guard = _Guard(
            self.injector, self.backoff, self.stats,
            pipeline.tracer, rt.device.clock,
            "rtm" if isinstance(self.config, RTMConfig) else "modeling",
        )
        return prop, pipeline, guard

    def _restart(self, exc, guard, ckpt, prop, pipeline, phase, at_step, aux=None):
        """Restore the most recent checkpoint; returns the loop index to
        resume from. Raises the original fault when the restart budget is
        spent (unrecoverable)."""
        if self.stats.restarts >= self.max_restarts:
            raise exc.cause
        self.stats.restarts += 1
        step = ckpt.latest(at_step)
        with guard._span(
            "restart", from_step=at_step, to_step=step, phase=phase,
            error=str(exc.cause),
        ):
            t0 = guard.clock.now
            pipeline.drop_residency()
            # restart-level repair: the modelled link/card reset clears any
            # latched permanent PCIe fault
            self.injector.resolve(PCIE_PERMANENT)
            state = ckpt.load(step)
            prop.restore_state(state["prop"])
            if aux is not None:
                aux(state)
            pipeline.restore_residency(phase)
            self.stats.recovery_cost_s += guard.clock.now - t0
        self.stats.note(
            f"restart from checkpoint {step} after {type(exc.cause).__name__}",
            kind="restart",
        )
        return step

    def _initial_allocate(self, guard, pipeline) -> None:
        """Guarded first residency build. No physics has run yet, so the
        restart rung reduces to: tear down, reset the link (a permanent
        PCIe fault latched during the copyin), rebuild."""
        try:
            guard.run(
                "allocate_forward", pipeline.allocate_forward, pipeline,
                "idle", reset=pipeline.drop_residency,
            )
        except _RestartNeeded as exc:
            if self.stats.restarts >= self.max_restarts:
                raise exc.cause
            self.stats.restarts += 1
            with guard._span("restart", phase="allocate", error=str(exc.cause)):
                t0 = guard.clock.now
                pipeline.drop_residency()
                self.injector.resolve(PCIE_PERMANENT)
                pipeline.restore_residency("forward")
                self.stats.recovery_cost_s += guard.clock.now - t0
            self.stats.note(
                "allocate restarted after " + type(exc.cause).__name__,
                kind="restart",
            )

    def _finalize(self, guard, pipeline, phase, with_image: bool):
        try:
            guard.run("finalize", lambda: pipeline.finalize(with_image), pipeline, phase)
        except _RestartNeeded:
            # the answer already lives on the host — a finalize that cannot
            # talk to the card degrades to dropping residency outright
            pipeline.drop_residency()
            self.injector.resolve(PCIE_PERMANENT)
            self.stats.degraded.append("finalize:drop")
            self.stats.note("finalize degraded to residency drop", kind="degrade")

    # ------------------------------------------------------------------
    def run_modeling(self) -> ModelingResult:
        config = self.config
        physics = config.physics.lower()
        prop, pipeline, guard = self._setup(physics)
        dt = prop.dt
        snap_period = (
            config.snap_period
            if config.snap_period is not None
            else default_snap_period(dt, config.peak_freq)
        )
        store = SnapshotStore(snap_period, decimate=config.snapshot_decimate)
        source = _default_source(config, dt)
        receivers = (
            config.receivers
            if config.receivers is not None
            else _default_receivers(config)
        )
        seismogram = np.zeros((config.nt, receivers.count), dtype=np.float32)
        ckpt = CheckpointStore(
            config.nt, self.checkpoint_period, self.checkpoint_budget
        )
        self.checkpoints = ckpt

        self._initial_allocate(guard, pipeline)
        n = 0
        while n < config.nt:
            if ckpt.is_checkpoint_step(n):
                ckpt.save(n, prop.snapshot_field(), {"prop": prop.capture_state()})
            try:
                amp = source.amplitude(n)
                srcs = [(source.index, amp)] if amp != 0.0 else []
                prop.step(srcs)
                seismogram[n, :] = receivers.record(prop.snapshot_field())
                guard.run(
                    "forward_step",
                    lambda s=srcs: pipeline.forward_step(inject_source=bool(s)),
                    pipeline, "forward",
                )
                if store.is_snap_step(n):
                    store.save(n, prop.snapshot_field())
                    guard.run(
                        "snapshot_to_host",
                        lambda: pipeline.snapshot_to_host(
                            decimate=config.snapshot_decimate
                        ),
                        pipeline, "forward",
                    )
                n += 1
            except _RestartNeeded as exc:
                n = self._restart(exc, guard, ckpt, prop, pipeline, "forward", n)

        self._finalize(guard, pipeline, "forward", with_image=False)
        return ModelingResult(
            seismogram=seismogram,
            snapshots=store,
            final_wavefield=prop.snapshot_field().copy(),
            dt=dt,
            gpu=pipeline.gpu_times(),
            extras={"resilience": self.stats},
        )

    # ------------------------------------------------------------------
    def run_rtm(self) -> RTMResult:
        config = self.config
        if not isinstance(config, RTMConfig):
            raise ConfigurationError("run_rtm needs an RTMConfig")
        physics = config.physics.lower()
        fwd, pipeline, guard = self._setup(physics)
        dt = fwd.dt
        snap_period = (
            config.snap_period
            if config.snap_period is not None
            else default_snap_period(dt, config.peak_freq)
        )
        store = SnapshotStore(snap_period, decimate=1)
        source = _default_source(config, dt)
        receivers = (
            config.receivers
            if config.receivers is not None
            else _default_receivers(config)
        )
        seismogram = np.zeros((config.nt, receivers.count), dtype=np.float32)
        shape = config.model.grid.shape
        illum = np.zeros(shape, dtype=np.float32)
        ckpt = CheckpointStore(
            config.nt, self.checkpoint_period, self.checkpoint_budget
        )
        self.checkpoints = ckpt

        # ---------------- forward phase ----------------
        self._initial_allocate(guard, pipeline)

        def restore_illum(state):
            illum[...] = state["illum"]

        n = 0
        while n < config.nt:
            if ckpt.is_checkpoint_step(n):
                ckpt.save(
                    n, fwd.snapshot_field(),
                    {"prop": fwd.capture_state(), "illum": illum.copy()},
                )
            try:
                amp = source.amplitude(n)
                srcs = [(source.index, amp)] if amp != 0.0 else []
                fwd.step(srcs)
                seismogram[n, :] = receivers.record(fwd.snapshot_field())
                guard.run(
                    "forward_step",
                    lambda s=srcs: pipeline.forward_step(inject_source=bool(s)),
                    pipeline, "forward",
                )
                if store.is_snap_step(n):
                    s = fwd.snapshot_field()
                    store.save(n, s)
                    illumination_update(illum, s)
                    guard.run(
                        "snapshot_to_host",
                        lambda: pipeline.snapshot_to_host(decimate=1),
                        pipeline, "forward",
                    )
                n += 1
            except _RestartNeeded as exc:
                n = self._restart(
                    exc, guard, ckpt, fwd, pipeline, "forward", n,
                    aux=restore_illum,
                )

        # ---------------- swap ----------------
        def do_swap():
            # a retry after a teardown re-enters from idle: rebuild the
            # forward residency, then swap — same end state as one swap
            if pipeline.phase == "idle":
                pipeline.restore_residency("backward")
            else:
                pipeline.swap_to_backward()

        try:
            guard.run("swap_to_backward", do_swap, pipeline, "forward",
                      reset=pipeline.drop_residency)
        except _RestartNeeded as exc:
            if self.stats.restarts >= self.max_restarts:
                raise exc.cause
            self.stats.restarts += 1
            with guard._span("restart", phase="swap", error=str(exc.cause)):
                t0 = guard.clock.now
                pipeline.drop_residency()
                self.injector.resolve(PCIE_PERMANENT)
                pipeline.restore_residency("backward")
                self.stats.recovery_cost_s += guard.clock.now - t0
            self.stats.note("swap restarted after " + type(exc.cause).__name__,
                            kind="restart")

        # ---------------- backward phase ----------------
        bwd = make_propagator(
            physics,
            config.model,
            dt=config.dt,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            **({"pml_variant": config.pml_variant} if physics == "isotropic" else {}),
        )
        image = np.zeros(shape, dtype=np.float32)
        scale = np.float32(1.0 / bwd.dt)
        bck = CheckpointStore(
            config.nt, self.checkpoint_period, self.checkpoint_budget
        )
        self.backward_checkpoints = bck

        def restore_image(state):
            image[...] = state["image"]

        n = config.nt - 1
        while n >= 0:
            m = config.nt - 1 - n  # completed backward steps
            if bck.is_checkpoint_step(m):
                bck.save(
                    m, bwd.snapshot_field(),
                    {"prop": bwd.capture_state(), "image": image.copy()},
                )
            try:
                traces = seismogram[n, :]
                bwd.step(())
                bwd.inject_pressure(receivers.indices, traces, scale=scale)
                if store.has(n):
                    cross_correlation_update(image, store.load(n), bwd.snapshot_field())
                    guard.run(
                        "load_forward_snapshot",
                        pipeline.load_forward_snapshot, pipeline, "backward",
                    )
                    guard.run(
                        "imaging_step", pipeline.imaging_step, pipeline, "backward",
                    )
                guard.run(
                    "backward_step",
                    lambda: pipeline.backward_step(inject_receivers=True),
                    pipeline, "backward",
                )
                n -= 1
            except _RestartNeeded as exc:
                m_r = self._restart(
                    exc, guard, bck, bwd, pipeline, "backward", m,
                    aux=restore_image,
                )
                n = config.nt - 1 - m_r

        self._finalize(
            guard, pipeline, "backward", with_image=self.options.image_on_gpu
        )
        raw = image.copy()
        out = normalize_image(
            image, illum if config.illumination_normalize else None
        )
        mute = (
            config.mute_cells
            if config.mute_cells is not None
            else config.boundary_width + 8
        )
        out = mute_shallow(out, mute)
        return RTMResult(
            image=out,
            raw_image=raw,
            seismogram=seismogram,
            dt=dt,
            gpu=pipeline.gpu_times(),
            extras={
                "snap_period": snap_period,
                "snapshots": store.count,
                "resilience": self.stats,
            },
        )


class ResilientMultiGpu:
    """Fault-tolerant decomposed run over :class:`MultiGpuPipeline`.

    Each rank carries a *real* host field (the decomposed scatter of a
    seeded global field) advanced by a deterministic, halo-dependent
    axis-0 smoothing stencil each step — deliberately simple physics whose
    answer is provably wrong if a ghost exchange is lost and not recovered.
    The per-rank device pipelines and the MPI world run the full
    instrumented schedule, so every fault kind (device *and* message) has a
    real injection surface, and recovery must reproduce the fault-free
    gathered field exactly.

    Degradation ladder additions over the single-card wrapper: a dead rank
    gathers the global state from the surviving host copies, re-decomposes
    onto ``ngpus - 1`` cards, and continues the same step.
    """

    def __init__(
        self,
        physics: str,
        shape: tuple[int, ...],
        ngpus: int,
        platform: Platform = CRAY_K40,
        options: GPUOptions | None = None,
        injector: FaultInjector | None = None,
        plan=None,
        backoff: BackoffPolicy | None = None,
        checkpoint_period: int | None = None,
        max_restarts: int = 4,
        seed: int = 1234,
        space_order: int = 8,
        boundary_width: int = 16,
        tracer=None,
    ):
        if ngpus < 1:
            raise ConfigurationError("ngpus must be >= 1")
        self.physics = physics.lower()
        self.shape = tuple(int(x) for x in shape)
        self.ngpus = int(ngpus)
        self.platform = platform
        self.options = options if options is not None else GPUOptions()
        if injector is None:
            injector = FaultInjector(plan, tracer=tracer)
        self.injector = injector
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.checkpoint_period = checkpoint_period
        self.max_restarts = int(max_restarts)
        self.space_order = int(space_order)
        self.boundary_width = int(boundary_width)
        self.tracer = tracer
        self.stats = RecoveryStats()
        rng = np.random.default_rng(seed)
        self.global_field = rng.standard_normal(self.shape).astype(np.float32)
        self.image: np.ndarray | None = None
        self.mgp: MultiGpuPipeline | None = None
        #: device seconds retired by torn-down pipelines (a re-decompose
        #: builds fresh cards with fresh clocks; the node's timeline must
        #: not forget the work the lost configuration already did)
        self._retired_device_s = 0.0
        self._build(self.ngpus)

    # ------------------------------------------------------------------
    def device_seconds(self) -> float:
        """Total simulated device seconds this node has consumed, across
        every re-decomposition (the serve layer's node-time charge)."""
        return self._retired_device_s + self.mgp.makespan_s()

    def _build(self, ngpus: int) -> None:
        if self.mgp is not None:
            self._retired_device_s += self.mgp.makespan_s()
        self.ngpus = ngpus
        self.mgp = MultiGpuPipeline(
            self.physics,
            self.shape,
            ngpus,
            platform=self.platform,
            options=self.options,
            space_order=self.space_order,
            boundary_width=self.boundary_width,
            injector=self.injector,
        )
        self._scatter()

    def _scatter(self) -> None:
        for rc in self.mgp.ranks:
            rc.host_field[...] = rc.sub.scatter(self.global_field)

    def _gather(self) -> None:
        for rc in self.mgp.ranks:
            rc.sub.gather_into(self.global_field, rc.host_field)

    def _guard(self) -> _Guard:
        clock = self.mgp.ranks[0].pipe.rt.device.clock
        tracer = self.tracer if self.tracer is not None else NULL_TRACER
        return _Guard(
            self.injector, self.backoff, self.stats, tracer, clock, "modeling"
        )

    # ------------------------------------------------------------------
    # the host physics: deterministic, halo-dependent axis-0 smoothing
    # ------------------------------------------------------------------
    @staticmethod
    def reference_step(g: np.ndarray) -> np.ndarray:
        """The global-domain update one :meth:`_local_step` sweep equals
        when every halo is fresh (used by tests as the decomposition-free
        oracle)."""
        pad = [(1, 1)] + [(0, 0)] * (g.ndim - 1)
        p = np.pad(g, pad, mode="edge")
        return (0.25 * p[:-2] + 0.5 * p[1:-1] + 0.25 * p[2:]).astype(np.float32)

    def _local_step(self) -> None:
        h = self.mgp.decomp.halo
        for rc in self.mgp.ranks:
            a = rc.host_field
            # physical-edge halos replicate the current edge plane (what the
            # global rule's edge padding sees); exchanged halos were filled
            # by the previous ghost swap
            if not rc.sub.halo.lo[0]:
                a[:h] = a[h]
            if not rc.sub.halo.hi[0]:
                a[-h:] = a[-h - 1]
            n0 = a.shape[0]
            core = (
                0.25 * a[h - 1:n0 - h - 1]
                + 0.5 * a[h:n0 - h]
                + 0.25 * a[h + 1:n0 - h + 1]
            ).astype(np.float32)
            a[h:n0 - h] = core

    # ------------------------------------------------------------------
    def _exchange(self, guard: _Guard, name: str) -> None:
        """One guarded ghost swap: a failed exchange flushes the world and
        retries wholesale (owned cells are untouched by the exchange, so
        the retry converges on exactly the clean ghost state)."""
        attempt = 0
        while True:
            try:
                self.mgp.exchange(name)
                return
            except (CommunicationError,) + _TRANSIENT as exc:
                self.stats.detected += 1
                if attempt >= self.backoff.max_retries:
                    raise _RestartNeeded(exc)
                with guard._span("retry:exchange", attempt=attempt, error=str(exc)):
                    dropped = self.mgp.mpi.flush()
                    guard._wait(attempt)
                attempt += 1
                self.stats.retries += 1
                self.stats.note(
                    f"retry exchange (attempt {attempt}, flushed {dropped}): {exc}",
                    kind="retry",
                )

    def _rank_op(
        self, guard: _Guard, rc, label: str, op, phase: str, reset=None
    ) -> None:
        guard.run(label, op, rc.pipe, phase, reset=reset)

    def _restore_residency(self, phase: str) -> None:
        for rc in self.mgp.ranks:
            rc.pipe.drop_residency()
        for rc in self.mgp.ranks:
            rc.pipe.restore_residency(phase)

    def _restart(self, exc, guard, ckpt, phase: str, at: int) -> int:
        if self.stats.restarts >= self.max_restarts:
            raise exc.cause
        self.stats.restarts += 1
        step = ckpt.latest(at)
        with guard._span(
            "restart", from_step=at, to_step=step, phase=phase,
            error=str(exc.cause),
        ):
            t0 = guard.clock.now
            state = ckpt.load(step)
            self.global_field[...] = state["global"]
            if self.image is not None and "image" in state:
                self.image[...] = state["image"]
            self.injector.resolve(PCIE_PERMANENT)
            self.mgp.mpi.flush()
            self._scatter()
            self._restore_residency(phase)
            self.stats.recovery_cost_s += guard.clock.now - t0
        self.stats.note(
            f"restart from checkpoint {step} after {type(exc.cause).__name__}",
            kind="restart",
        )
        return step

    def _structural(self, guard: "_Guard", phase: str, body) -> None:
        """Run a residency-building sweep (allocate / swap) with the
        allocate-level restart rung: no checkpoint is involved because the
        host state is intact — tear everything down, reset the link, and
        rebuild straight to ``phase``."""
        try:
            body()
        except _RestartNeeded as exc:
            if self.stats.restarts >= self.max_restarts:
                raise exc.cause
            self.stats.restarts += 1
            with guard._span("restart", phase=phase, error=str(exc.cause)):
                t0 = guard.clock.now
                self.injector.resolve(PCIE_PERMANENT)
                self._restore_residency(phase)
                self.stats.recovery_cost_s += guard.clock.now - t0
            self.stats.note(
                f"{phase} residency restarted after {type(exc.cause).__name__}",
                kind="restart",
            )

    def _redecompose(self, exc: DeviceLostError, phase: str) -> None:
        """The dead-rank rung: the card is gone but every host slab is
        intact — gather, rebuild on the survivors, scatter, re-upload."""
        if self.ngpus <= 1:
            raise exc  # nothing left to decompose onto
        self.stats.detected += 1
        old = self.ngpus
        guard = self._guard()
        with guard._span(
            "redecompose", from_ranks=old, to_ranks=old - 1, error=str(exc),
        ):
            self._gather()
            self.injector.resolve(RANK_DEAD)
            self._build(old - 1)
            for rc in self.mgp.ranks:
                rc.pipe.restore_residency(phase)
        action = f"re-decompose:{old}->{old - 1}"
        self.stats.degraded.append(action)
        self.stats.note(f"{action} after rank loss", kind="degrade")

    # ------------------------------------------------------------------
    def run(self, nt: int, snap_period: int, mode: str = "modeling") -> np.ndarray:
        """Run ``nt`` decomposed steps (plus a backward imaging phase for
        ``mode='rtm'``); returns the final gathered global field
        (modeling) or the accumulated image (rtm)."""
        if mode not in ("modeling", "rtm"):
            raise ConfigurationError(f"unknown mode '{mode}'")
        period = self.checkpoint_period
        if period is None:
            period = max(1, nt // 4)
        ckpt = CheckpointStore(nt, period)
        store = SnapshotStore(snap_period) if mode == "rtm" else None
        guard = self._guard()

        def allocate_all():
            for rc in self.mgp.ranks:
                self._rank_op(
                    guard, rc, "allocate_forward", rc.pipe.allocate_forward,
                    "idle", reset=rc.pipe.drop_residency,
                )

        self._structural(guard, "forward", allocate_all)

        n = 0
        while n < nt:
            guard = self._guard()  # rank 0's clock may change on rebuild
            if ckpt.is_checkpoint_step(n):
                self._gather()
                ckpt.save(n, self.global_field, {"global": self.global_field.copy()})
            try:
                self._local_step()
                for rc in list(self.mgp.ranks):
                    try:
                        self._rank_op(
                            guard, rc, "forward_step", rc.pipe.forward_step,
                            "forward",
                        )
                    except DeviceLostError as exc:
                        self._redecompose(exc, "forward")
                        raise _RestartNeeded(exc)
                self._exchange(guard, self.mgp.primary)
                if mode == "rtm" and (n + 1) % snap_period == 0:
                    self._gather()
                    store.save(n, self.global_field.copy())
                n += 1
            except _RestartNeeded as exc:
                n = self._restart(exc, guard, ckpt, "forward", n)

        self._gather()
        if mode == "modeling":
            for rc in self.mgp.ranks:
                self._rank_op(
                    guard, rc, "finalize",
                    lambda p=rc.pipe: p.finalize(with_image=False), "forward",
                )
            return self.global_field.copy()

        # ---------------- rtm backward phase ----------------
        def swap_all():
            for rc in self.mgp.ranks:
                self._rank_op(
                    guard, rc, "swap_to_backward",
                    lambda p=rc.pipe: (
                        p.restore_residency("backward")
                        if p.phase == "idle"
                        else p.swap_to_backward()
                    ),
                    "forward", reset=rc.pipe.drop_residency,
                )

        self._structural(guard, "backward", swap_all)
        self.image = np.zeros(self.shape, dtype=np.float32)
        # deterministic backward seed: the time-reverse starts from the
        # final forward state, halved
        self.global_field[...] = 0.5 * self.global_field
        self._scatter()
        bwd_name = self.mgp._backward_name()
        bck = CheckpointStore(nt, period)
        m = 0
        while m < nt:
            guard = self._guard()
            if bck.is_checkpoint_step(m):
                self._gather()
                bck.save(m, self.global_field, {
                    "global": self.global_field.copy(),
                    "image": self.image.copy(),
                })
            try:
                self._local_step()
                for rc in list(self.mgp.ranks):
                    try:
                        self._rank_op(
                            guard, rc, "backward_step", rc.pipe.backward_step,
                            "backward",
                        )
                    except DeviceLostError as exc:
                        self._redecompose(exc, "backward")
                        raise _RestartNeeded(exc)
                self._exchange(guard, bwd_name)
                step = nt - 1 - m
                if store.has(step):
                    self._gather()
                    self.image += store.load(step) * self.global_field
                m += 1
            except _RestartNeeded as exc:
                m = self._restart(exc, guard, bck, "backward", m)

        for rc in self.mgp.ranks:
            self._rank_op(
                guard, rc, "finalize",
                lambda p=rc.pipe: p.finalize(
                    with_image=p.options.image_on_gpu
                ), "backward",
            )
        return self.image.copy()


__all__ = [
    "BackoffPolicy",
    "CheckpointStore",
    "RecoveryStats",
    "ResilientPipeline",
    "ResilientMultiGpu",
]
