"""Fault injection, recovery and chaos testing for the simulated stack.

``repro.resilience`` closes the loop the ROADMAP's production-scale north
star leaves open: the stack *plans* checkpoints and *detects* hazards, but
nothing could survive a fault. This package injects typed, seeded faults
into every layer (PCIe, kernels, allocations, MPI messages), recovers
(retry with deterministic backoff, restart from an executed checkpoint,
degrade via re-planning or re-decomposition) and proves — per run — that
the recovered answer matches the fault-free one.

Layout
------
``faults``
    The shared fault vocabulary: :class:`FaultSpec`, :class:`FaultPlan`,
    parse helpers, kind constants.
``injector``
    :class:`FaultInjector` — arms a plan against the hooks threaded into
    :mod:`repro.gpusim`, :mod:`repro.acc` and :mod:`repro.mpisim`.
``recovery``
    :class:`ResilientPipeline` / :class:`ResilientMultiGpu` — the guarded
    execution wrappers, plus :class:`BackoffPolicy` and
    :class:`CheckpointStore`.
``chaos``
    Seeded campaign runner behind ``python -m repro chaos``.
``report``
    :class:`ResilienceReport` (text/JSON).

Only ``faults`` and ``report`` are imported eagerly: ``recovery`` and
``chaos`` import the core pipelines, which themselves import this package's
fault vocabulary — the lazy split keeps that cycle open.
"""

from __future__ import annotations

from repro.resilience.faults import (  # noqa: F401
    ALL_KINDS,
    DEVICE_KINDS,
    KIND_ALIASES,
    MPI_KINDS,
    PROTOCOL_KINDS,
    SHOT_POISON,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    parse_fault_spec,
    parse_faults,
)
from repro.resilience.report import FaultOutcome, ResilienceReport  # noqa: F401

_LAZY = {
    "FaultInjector": ("repro.resilience.injector", "FaultInjector"),
    "BoundInjector": ("repro.resilience.injector", "BoundInjector"),
    "BackoffPolicy": ("repro.resilience.recovery", "BackoffPolicy"),
    "CheckpointStore": ("repro.resilience.recovery", "CheckpointStore"),
    "ResilientPipeline": ("repro.resilience.recovery", "ResilientPipeline"),
    "ResilientMultiGpu": ("repro.resilience.recovery", "ResilientMultiGpu"),
    "RecoveryStats": ("repro.resilience.recovery", "RecoveryStats"),
    "run_chaos_case": ("repro.resilience.chaos", "run_chaos_case"),
    "run_chaos_case_multigpu": (
        "repro.resilience.chaos", "run_chaos_case_multigpu"
    ),
    "run_chaos_campaign": ("repro.resilience.chaos", "run_chaos_campaign"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.resilience' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), attr)


__all__ = [
    "ALL_KINDS", "DEVICE_KINDS", "MPI_KINDS", "PROTOCOL_KINDS",
    "KIND_ALIASES", "SHOT_POISON",
    "FaultSpec", "FaultPlan", "FaultEvent",
    "parse_fault_spec", "parse_faults",
    "FaultOutcome", "ResilienceReport",
    *_LAZY,
]
