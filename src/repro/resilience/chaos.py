"""The chaos harness behind ``python -m repro chaos``.

For each seed case the harness:

1. runs the **fault-free reference** under a counting injector (empty
   plan) — this yields both the golden outputs and the per-category
   operation-count envelope;
2. draws a seeded :class:`~repro.resilience.faults.FaultPlan` over that
   envelope (one spec per fault kind, injection points uniform over the
   operations the run actually performs);
3. runs each spec through the matching resilient wrapper
   (:class:`~repro.resilience.recovery.ResilientPipeline` single-card,
   :class:`~repro.resilience.recovery.ResilientMultiGpu` when
   ``ranks > 1``) and compares the recovered answer against the
   reference — exact first, then a tight ``allclose``.

Everything is a pure function of ``(case, mode, seed, ranks, nt)``: no
wall clock, no global RNG — identical seeds produce identical
:class:`~repro.resilience.report.ResilienceReport` JSON.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.faults import (
    DEVICE_KINDS,
    MPI_KINDS,
    RANK_DEAD,
    CATEGORY,
    FaultPlan,
    parse_faults,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.recovery import (
    BackoffPolicy,
    ResilientMultiGpu,
    ResilientPipeline,
)
from repro.resilience.report import FaultOutcome, ResilienceReport
from repro.utils.errors import ConfigurationError, ReproError

#: chaos-run grid sizes — smaller than the trace CLI's: each case runs
#: once per fault kind plus the reference
CHAOS_SHAPES = {2: (64, 64), 3: (32, 32, 32)}

#: the 6 physics/dimensionality seed cases (each runs in both modes)
CASES = ("iso2d", "ac2d", "el2d", "iso3d", "ac3d", "el3d")

#: fault kinds exercised per world size
SINGLE_RANK_KINDS = DEVICE_KINDS
MULTI_RANK_KINDS = DEVICE_KINDS + MPI_KINDS + (RANK_DEAD,)

_RTOL, _ATOL = 1e-5, 1e-6


def _equivalent(a: np.ndarray, b: np.ndarray) -> tuple[bool, str]:
    """Exact first (recovery replays the same NumPy ops on restored bits),
    tolerance second; returns (equivalent, note)."""
    if np.array_equal(a, b):
        return True, "bitwise"
    if a.shape == b.shape and np.allclose(a, b, rtol=_RTOL, atol=_ATOL):
        return True, "allclose"
    return False, "mismatch"


def _chaos_config(case: str, nt: int):
    """Build the (physics, ndim, config kwargs) of one chaos case."""
    from repro.model import layered_model
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    shape = CHAOS_SHAPES[ndim]
    depth = shape[0] * 10.0 / 2
    model = layered_model(
        shape, spacing=10.0, interfaces=[depth],
        velocities=[1500.0, 2600.0], vs_ratio=0.5,
    )
    kw = dict(
        physics=physics, model=model, nt=nt, peak_freq=12.0,
        space_order=4 if ndim == 3 else 8,
        boundary_width=8, snap_period=4,
    )
    return physics, ndim, kw


def _min_rank_envelope(injector: FaultInjector, ranks: int) -> dict[str, int]:
    """Per-category op counts safe for *any* rank filter: rank-filtered
    specs fire against their rank's own counter, so the seeded op index
    must fit inside the smallest per-rank count."""
    if ranks <= 1:
        return injector.op_counts()
    out: dict[str, int] = {}
    for cat in injector.op_counts():
        per_rank = [injector.op_count(cat, rank=r) for r in range(ranks)]
        floor = min(per_rank)
        if floor > 0:
            out[cat] = floor
    return out


def _outcome_from_stats(
    case: str, mode: str, kind: str, spec_str: str, injector: FaultInjector,
    stats, recovered: bool, equivalent: bool, notes: str,
) -> FaultOutcome:
    return FaultOutcome(
        case=case,
        mode=mode,
        kind=kind,
        spec=spec_str,
        injected=len(injector.events),
        detected=stats.detected > 0,
        retries=stats.retries,
        restarts=stats.restarts,
        degraded=",".join(stats.degraded),
        recovered=recovered,
        equivalent=equivalent,
        recovery_cost_s=stats.recovery_cost_s,
        events=tuple(ev.label() for ev in injector.events),
        notes=notes,
    )


# ---------------------------------------------------------------------------
# single-card campaign (the 12 executed seed cases)
# ---------------------------------------------------------------------------

def run_chaos_case(
    case: str,
    mode: str = "rtm",
    seed: int = 7,
    nt: int = 16,
    faults: str | None = None,
    kinds: tuple[str, ...] | None = None,
    tracer=None,
) -> list[FaultOutcome]:
    """Chaos one executed single-card case; one outcome per fault spec."""
    from repro.core.config import GPUOptions, ModelingConfig, RTMConfig

    if mode not in ("modeling", "rtm"):
        raise ConfigurationError(f"mode must be 'modeling' or 'rtm', not '{mode}'")
    _, _, kw = _chaos_config(case, nt)
    cfg_cls = RTMConfig if mode == "rtm" else ModelingConfig

    def build(plan, inj_tracer=None):
        return ResilientPipeline(
            cfg_cls(**kw),
            gpu_options=GPUOptions(),
            tracer=inj_tracer,
            plan=plan,
            backoff=BackoffPolicy(seed=seed),
        )

    # fault-free reference: golden outputs + the op-count envelope
    ref = build(None)
    ref_result = ref.run_rtm() if mode == "rtm" else ref.run_modeling()
    ref_answer = (
        ref_result.image if mode == "rtm" else ref_result.final_wavefield
    )
    envelope = ref.injector.op_counts()

    if faults:
        specs = parse_faults(faults)
    else:
        wanted = kinds if kinds is not None else SINGLE_RANK_KINDS
        specs = FaultPlan.seeded(seed, tuple(wanted), envelope).specs

    outcomes = []
    for spec in specs:
        plan = FaultPlan(seed=seed, specs=(spec,))
        run = build(plan, inj_tracer=tracer)
        recovered, equivalent, notes = False, False, ""
        try:
            result = run.run_rtm() if mode == "rtm" else run.run_modeling()
            answer = result.image if mode == "rtm" else result.final_wavefield
            recovered = True
            equivalent, notes = _equivalent(ref_answer, answer)
            if mode == "modeling" and equivalent:
                equivalent, notes = _equivalent(
                    ref_result.seismogram, result.seismogram
                )
        except ReproError as exc:
            notes = f"{type(exc).__name__}: {exc}"
        outcomes.append(_outcome_from_stats(
            case, mode, spec.kind, spec.spec_string(), run.injector,
            run.stats, recovered, equivalent, notes,
        ))
    return outcomes


# ---------------------------------------------------------------------------
# decomposed campaign (ranks > 1)
# ---------------------------------------------------------------------------

def run_chaos_case_multigpu(
    case: str,
    mode: str = "rtm",
    seed: int = 7,
    ranks: int = 2,
    nt: int = 12,
    faults: str | None = None,
    kinds: tuple[str, ...] | None = None,
    tracer=None,
) -> list[FaultOutcome]:
    """Chaos one decomposed case over ``ranks`` simulated cards."""
    if mode not in ("modeling", "rtm"):
        raise ConfigurationError(f"mode must be 'modeling' or 'rtm', not '{mode}'")
    if ranks < 2:
        raise ConfigurationError("multi-GPU chaos needs ranks >= 2")
    physics, ndim, _ = _chaos_config(case, nt)
    shape = CHAOS_SHAPES[ndim]
    snap = 4

    def build(plan, inj_tracer=None):
        return ResilientMultiGpu(
            physics, shape, ranks,
            plan=plan,
            backoff=BackoffPolicy(seed=seed),
            boundary_width=8,
            space_order=4 if ndim == 3 else 8,
            seed=seed,
            tracer=inj_tracer,
        )

    ref = build(None)
    ref_answer = ref.run(nt, snap, mode=mode)
    envelope = _min_rank_envelope(ref.injector, ranks)

    if faults:
        specs = parse_faults(faults)
    else:
        wanted = kinds if kinds is not None else MULTI_RANK_KINDS
        specs = FaultPlan.seeded(seed, tuple(wanted), envelope, ranks=ranks).specs

    outcomes = []
    for spec in specs:
        plan = FaultPlan(seed=seed, specs=(spec,))
        run = build(plan, inj_tracer=tracer)
        recovered, equivalent, notes = False, False, ""
        try:
            answer = run.run(nt, snap, mode=mode)
            recovered = True
            equivalent, notes = _equivalent(ref_answer, answer)
        except ReproError as exc:
            notes = f"{type(exc).__name__}: {exc}"
        outcomes.append(_outcome_from_stats(
            case, mode, spec.kind, spec.spec_string(), run.injector,
            run.stats, recovered, equivalent, notes,
        ))
    return outcomes


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------

def run_chaos_campaign(
    cases: tuple[str, ...] | None = None,
    modes: tuple[str, ...] = ("modeling", "rtm"),
    seed: int = 7,
    ranks: int = 1,
    nt: int | None = None,
    faults: str | None = None,
    tracer=None,
) -> ResilienceReport:
    """The full campaign: every case x mode x fault kind."""
    cases = tuple(cases) if cases else CASES
    report = ResilienceReport(seed=seed, ranks=ranks)
    for case in cases:
        for mode in modes:
            if ranks > 1:
                rows = run_chaos_case_multigpu(
                    case, mode=mode, seed=seed, ranks=ranks,
                    nt=nt if nt is not None else 12,
                    faults=faults, tracer=tracer,
                )
            else:
                rows = run_chaos_case(
                    case, mode=mode, seed=seed,
                    nt=nt if nt is not None else 16,
                    faults=faults, tracer=tracer,
                )
            for row in rows:
                report.add(row)
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def run_chaos_command(args) -> int:
    """``python -m repro chaos`` entry point (argparse namespace in)."""
    tracer = None
    if getattr(args, "trace", None):
        from repro.trace.tracer import Tracer

        tracer = Tracer()

    modes = (
        ("modeling", "rtm")
        if args.mode == "both"
        else (args.mode,)
    )
    from repro.observe import RunLog, append_run, ledger_path_from_args

    cases = None if args.case == "all" else (args.case,)
    runlog = RunLog(command="chaos", case=args.case, mode=args.mode,
                    ranks=args.ranks, seed=args.seed)
    with runlog.activate():
        report = run_chaos_campaign(
            cases=cases, modes=modes, seed=args.seed, ranks=args.ranks,
            nt=args.nt, faults=args.faults, tracer=tracer,
        )

    text = report.to_json() if args.format == "json" else report.to_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.out}")
        if args.format != "json":
            print(text)
    else:
        print(text)

    if tracer is not None:
        from repro.trace.export import write_perfetto

        write_perfetto(tracer, args.trace)
        print(f"wrote {args.trace}")

    runs = len(report.outcomes)
    injected = report.injected
    ledger_path = ledger_path_from_args(args)
    record = append_run(
        ledger_path, runlog,
        {
            "runs": float(runs),
            "injected": float(injected),
            "unrecovered": float(report.unrecovered),
            "recovered_fraction": (
                1.0 - report.unrecovered / runs if runs else 1.0
            ),
            "recovery_cost_s": report.recovery_cost_s,
        },
    )
    if record is not None:
        print(f"ledger {ledger_path} (run {record.run_id})")
    return 0 if report.unrecovered == 0 else 1


__all__ = [
    "CASES",
    "CHAOS_SHAPES",
    "SINGLE_RANK_KINDS",
    "MULTI_RANK_KINDS",
    "run_chaos_case",
    "run_chaos_case_multigpu",
    "run_chaos_campaign",
    "run_chaos_command",
]
