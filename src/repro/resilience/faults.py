"""The shared fault vocabulary: typed, seeded, deterministic fault specs.

Production RTM runs for hours across cards and ranks; the faults that kill
surveys are not exotic — a PCIe transfer that times out, a kernel launch
that fails, an uncorrectable ECC event, a mid-run device OOM at the
Figure-4 swap, or a halo message that never arrives. This module gives each
of those a *typed spec* so every layer of the stack (gpusim, acc, mpisim,
the sanitizer's exchange-protocol knobs and the chaos CLI) speaks exactly
one fault language.

Determinism is the design center: a :class:`FaultPlan` is a pure function
of its seed and specs. Faults fire on the *N-th eligible operation* of
their category (transfers, launches, allocations, messages), counted by the
injector — never on wall time — so identical seeds reproduce identical
injection points, recovery actions and reports.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field, replace

from repro.utils.errors import ConfigurationError

# ---------------------------------------------------------------------------
# fault kinds
# ---------------------------------------------------------------------------

#: transient PCIe DMA failure: the retried transfer succeeds
PCIE_TRANSIENT = "pcie-transient"
#: permanent PCIe link fault: every transfer fails until a restart-level
#: recovery resets the link
PCIE_PERMANENT = "pcie-permanent"
#: kernel launch failure (cudaErrorLaunchFailure): relaunch succeeds
KERNEL_LAUNCH = "kernel-launch"
#: uncorrectable (double-bit) ECC event: device data corrupt, retry is not
#: enough — recovery must restore device state from a checkpoint
ECC = "ecc"
#: mid-run DeviceOutOfMemoryError at an allocation site
OOM = "oom"
#: the card falls off the bus for good (decomposed runs re-decompose)
RANK_DEAD = "rank-dead"
#: MPI message dropped in flight (receiver starves)
MPI_DROP = "mpi-drop"
#: MPI message duplicated (a stale extra copy stays queued)
MPI_DUP = "mpi-dup"
#: MPI message delayed past the superstep that needed it
MPI_DELAY = "mpi-delay"
#: exchange-protocol hazards (PR 4's ExchangeProtocol knobs, promoted):
#: the MPI send packs a host buffer no ``update host`` refreshed
HALO_STALE_HOST = "halo-stale-host"
#: the received ghost slab never reaches the card
HALO_STALE_DEVICE = "halo-stale-device"
#: the send races the asynchronous ``update host`` still filling the face
HALO_SEND_BEFORE_SYNC = "halo-send-before-sync"
#: a poisoned *shot*: the job itself fails on every node it lands on
#: (corrupt trace headers, NaN source wavelet). Injected at the service
#: layer (:mod:`repro.serve`) — it has no device category, so the
#: operation-level injector ignores it; ``rank`` names the shot index.
SHOT_POISON = "shot-poison"

#: every kind, in canonical order
ALL_KINDS = (
    PCIE_TRANSIENT,
    PCIE_PERMANENT,
    KERNEL_LAUNCH,
    ECC,
    OOM,
    RANK_DEAD,
    MPI_DROP,
    MPI_DUP,
    MPI_DELAY,
    HALO_STALE_HOST,
    HALO_STALE_DEVICE,
    HALO_SEND_BEFORE_SYNC,
    SHOT_POISON,
)

#: kinds injected through device operations (any rank count)
DEVICE_KINDS = (PCIE_TRANSIENT, PCIE_PERMANENT, KERNEL_LAUNCH, ECC, OOM)
#: kinds that need a message-passing world (ranks > 1)
MPI_KINDS = (MPI_DROP, MPI_DUP, MPI_DELAY)
#: protocol-hazard kinds consumed by the sanitizer's ExchangeProtocol
PROTOCOL_KINDS = (HALO_STALE_HOST, HALO_STALE_DEVICE, HALO_SEND_BEFORE_SYNC)

#: kinds whose fault persists across retries of the same operation
PERMANENT_KINDS = (PCIE_PERMANENT, RANK_DEAD)

#: accepted spellings from other tools' vocabularies, normalised on parse
#: (operators arrive with MPI-flavoured names for the same failure)
KIND_ALIASES = {
    "mpi-rank-dead": RANK_DEAD,
    "dead-rank": RANK_DEAD,
    "node-dead": RANK_DEAD,
    "poison-shot": SHOT_POISON,
}

#: injection category counted by the injector, per kind
CATEGORY = {
    PCIE_TRANSIENT: "transfer",
    PCIE_PERMANENT: "transfer",
    KERNEL_LAUNCH: "launch",
    ECC: "launch",
    RANK_DEAD: "launch",
    OOM: "alloc",
    MPI_DROP: "message",
    MPI_DUP: "message",
    MPI_DELAY: "message",
}


def is_permanent(kind: str) -> bool:
    return kind in PERMANENT_KINDS


# ---------------------------------------------------------------------------
# specs and plans
# ---------------------------------------------------------------------------

# the op digits are optional after ``@`` so spellings like
# ``rank-dead@x2`` (explicit default op, repeated twice) stay parseable
_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z][a-z0-9-]*)"
    r"(?:@(?P<op>\d+)?)?"
    r"(?:x(?P<count>\d+))?"
    r"(?::(?P<rank>\d+))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault to inject.

    Attributes
    ----------
    kind:
        One of :data:`ALL_KINDS`.
    op_index:
        1-based index of the eligible operation (within the kind's
        category, per matching rank) on which the fault first fires.
        Protocol kinds ignore it (they describe a standing misprotocol,
        not a point event).
    count:
        How many consecutive eligible operations fail, starting at
        ``op_index`` (transient kinds; ``count=2`` makes the first retry
        fail too). Permanent kinds fail every operation from ``op_index``
        until recovery resolves the spec.
    rank:
        Restrict to one rank's device/messages; ``None`` matches any rank.
    """

    kind: str
    op_index: int = 1
    count: int = 1
    rank: int | None = None

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ConfigurationError(
                f"unknown fault kind '{self.kind}' "
                f"(expected one of: {', '.join(ALL_KINDS)})"
            )
        if self.op_index < 1:
            raise ConfigurationError("op_index is 1-based (must be >= 1)")
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")

    @property
    def category(self) -> str | None:
        return CATEGORY.get(self.kind)

    def spec_string(self) -> str:
        s = self.kind
        if self.op_index != 1:
            s += f"@{self.op_index}"
        if self.count != 1:
            s += f"x{self.count}"
        if self.rank is not None:
            s += f":{self.rank}"
        return s


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``kind[@op][xcount][:rank]`` token, e.g.
    ``pcie-transient@40x2`` or ``rank-dead@9:1``. Alias spellings from
    :data:`KIND_ALIASES` (``mpi-rank-dead``, ...) normalise to their
    canonical kind, and the op digits may be omitted after ``@``."""
    m = _SPEC_RE.match(text.strip().lower())
    if m is None:
        raise ConfigurationError(
            f"malformed fault spec '{text}' "
            "(expected kind[@op][xcount][:rank], e.g. 'ecc@12' or "
            "'mpi-drop@3:1')"
        )
    kind = m.group("kind")
    return FaultSpec(
        kind=KIND_ALIASES.get(kind, kind),
        op_index=int(m.group("op") or 1),
        count=int(m.group("count") or 1),
        rank=None if m.group("rank") is None else int(m.group("rank")),
    )


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a comma-separated ``--faults`` argument."""
    tokens = [t for t in (p.strip() for p in text.split(",")) if t]
    if not tokens:
        raise ConfigurationError("empty fault spec list")
    return tuple(parse_fault_spec(t) for t in tokens)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault specs — the unit the chaos
    CLI runs and the injector arms. Equal (seed, specs) produce equal
    injection behaviour by construction."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def with_specs(self, *specs: FaultSpec) -> "FaultPlan":
        return replace(self, specs=self.specs + tuple(specs))

    def spec_string(self) -> str:
        return ",".join(s.spec_string() for s in self.specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: tuple[str, ...],
        op_counts: dict[str, int],
        ranks: int = 1,
    ) -> "FaultPlan":
        """Draw one spec per kind, its op index uniform over the observed
        operation count of that kind's category (from a fault-free counting
        run), its rank uniform over the world. Pure function of the
        arguments — the chaos harness's campaign generator."""
        rng = random.Random(seed)
        specs = []
        for kind in kinds:
            cat = CATEGORY.get(kind)
            if cat is None:  # protocol kinds: standing hazards, no op index
                specs.append(FaultSpec(kind))
                continue
            n = max(1, int(op_counts.get(cat, 1)))
            op = rng.randint(1, n)
            rank = rng.randrange(ranks) if ranks > 1 else None
            specs.append(FaultSpec(kind, op_index=op, rank=rank))
        return cls(seed=seed, specs=tuple(specs))


# ---------------------------------------------------------------------------
# fault events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One fired injection, as recorded by the injector."""

    kind: str
    category: str
    op_index: int
    rank: int | None = None
    target: str = ""
    detail: dict = field(default_factory=dict)

    def label(self) -> str:
        where = f" rank {self.rank}" if self.rank is not None else ""
        tgt = f" on '{self.target}'" if self.target else ""
        return f"{self.kind}@{self.category}#{self.op_index}{where}{tgt}"


__all__ = [
    "PCIE_TRANSIENT", "PCIE_PERMANENT", "KERNEL_LAUNCH", "ECC", "OOM",
    "RANK_DEAD", "MPI_DROP", "MPI_DUP", "MPI_DELAY",
    "HALO_STALE_HOST", "HALO_STALE_DEVICE", "HALO_SEND_BEFORE_SYNC",
    "SHOT_POISON",
    "ALL_KINDS", "DEVICE_KINDS", "MPI_KINDS", "PROTOCOL_KINDS",
    "PERMANENT_KINDS", "CATEGORY", "KIND_ALIASES", "is_permanent",
    "FaultSpec", "FaultPlan", "FaultEvent",
    "parse_fault_spec", "parse_faults",
]
