"""DirectiveProgram IR: the event sequence the static analyzer lints.

A :class:`DirectiveProgram` is an ordered list of :class:`AccEvent` records —
data-lifetime operations (``enter``/``exit``), transfers (``update``),
compute constructs, queue synchronisation (``wait``) and host-side write
markers — plus :class:`ProgramMeta` describing the device/compiler context
the program ran (or would run) under.

Programs come from two frontends:

* :class:`~repro.analyze.recorder.ProgramRecorder` — attached to a live
  :class:`~repro.acc.runtime.Runtime`, so any pipeline run emits its own
  program;
* :func:`~repro.analyze.frontend.program_from_script` — built directly from
  a ``!$acc`` directive script via :mod:`repro.acc.parser`.

The IR is deliberately flat (one dataclass, a ``kind`` tag) so passes can
scan event streams without a visitor layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.acc.clauses import LoopSchedule

#: event kinds carried by :class:`AccEvent`
KINDS = (
    "enter", "exit", "update", "compute", "wait", "host_write",
    "host_read", "send", "recv",
)


@dataclass(frozen=True)
class AccEvent:
    """One directive-level operation in program order.

    Only the fields relevant to the event's ``kind`` are populated:

    ``enter``/``exit``
        ``copyin``/``create`` and ``delete``/``copyout`` name tuples;
        ``structured`` marks the two ends of a structured ``data`` region.
    ``update``
        ``direction`` ('host'|'device'), ``var``, ``nbytes`` (None = full
        extent), ``chunks`` and the async ``queue``.
    ``compute``
        ``construct``, ``kernel``, read/write name sets (``writes_known``
        is False when the frontend could not see the kernel body — recorded
        programs only know the ``present`` clause), the loop ``schedule``,
        nest extents and body metadata, ``queue`` and ``wait_on`` edges,
        and the modelled register demand when available.
    ``wait``
        ``wait_on`` queue ids (empty tuple = wait on *all* queues).
    ``host_write``
        ``writes``: names whose *host* copies changed (snapshot restores,
        host-side physics between directives); ``offset``/``nbytes``
        restrict the write to a byte range (ghost-slab receives).
    ``host_read``
        ``reads``: names whose *host* copies are consumed outside
        directives (MPI sends, host-side I/O), with an optional
        ``offset``/``nbytes`` range.
    ``send``/``recv``
        an MPI transfer of the *host* copy of ``var`` (``peer`` is the
        other rank when known) — the boundary the sanitizer's cross-rank
        happens-before graph hangs its message edges on.
    """

    kind: str
    index: int = 0
    #: async queue the operation was enqueued on (None = synchronous)
    queue: int | None = None
    #: where the event came from (script line, pipeline phase)
    label: str | None = None
    # --- data lifetime ---------------------------------------------------
    copyin: tuple[str, ...] = ()
    create: tuple[str, ...] = ()
    delete: tuple[str, ...] = ()
    copyout: tuple[str, ...] = ()
    structured: bool = False
    # --- update / host_write / host_read / send / recv -------------------
    direction: str | None = None
    var: str | None = None
    nbytes: int | None = None
    chunks: int = 1
    #: starting byte of a partial transfer/marker (0 = array start)
    offset: int = 0
    #: peer rank of a send/recv event (None when unknown)
    peer: int | None = None
    # --- compute ---------------------------------------------------------
    construct: str | None = None
    kernel: str | None = None
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    writes_known: bool = False
    schedule: LoopSchedule | None = None
    loop_dims: tuple[int, ...] = ()
    inner_contiguous: bool = True
    loop_carried: bool = False
    halo: int | None = None
    regs_demand: int | None = None
    # --- wait ------------------------------------------------------------
    wait_on: tuple[int, ...] = ()
    #: a bare ``wait`` *clause* on a compute construct: the launch joins
    #: every queue (OpenACC semantics), not just the ones in ``wait_on``
    wait_all: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind '{self.kind}'")

    # ------------------------------------------------------------------
    def accesses(self, conservative: bool = False) -> list[tuple[str, str]]:
        """Device-array accesses as ``(name, 'r'|'w')`` pairs — the input of
        the race pass. Lifetime events access synchronously: ``copyin``
        writes the device mirror, ``copyout`` reads it, ``delete`` is
        treated as a write (freeing under in-flight work is a race).

        ``conservative`` governs computes whose write set the frontend
        never saw (``writes_known`` False — recorded programs only know
        the ``present`` clause): the default reports those names as reads
        only (the race pass's historical behaviour, which keeps auto-async
        schedules that serialise at step boundaries race-free), while
        ``conservative=True`` reports every present name as read *and*
        written — the sound reading the dependence graph must use, since a
        kernel is free to write anything it has present."""
        if self.kind == "enter":
            return [(n, "w") for n in self.copyin]
        if self.kind == "exit":
            return [(n, "r") for n in self.copyout] + [(n, "w") for n in self.delete]
        if self.kind == "update":
            return [(self.var, "w" if self.direction == "device" else "r")]
        if self.kind == "compute":
            out = [(n, "r") for n in self.reads]
            if self.writes_known or not conservative:
                out += [(n, "w") for n in self.writes]
            else:
                out += [(n, "w") for n in self.reads]
            return out
        return []


@dataclass(frozen=True)
class ProgramMeta:
    """Device/compiler context a program runs under."""

    source: str = "script"  # 'recorded' | 'script'
    name: str = "program"
    device: str | None = None
    warp_size: int = 32
    max_regs_per_thread: int | None = None
    max_threads_per_block: int | None = None
    compiler: str | None = None
    vendor: str | None = None  # 'pgi' | 'cray'
    maxregcount: int | None = None
    auto_async: bool = False


class DirectiveProgram:
    """Ordered event sequence + known array extents.

    ``extents`` maps array names to their attached byte counts (0 when the
    frontend had no size information, e.g. a bare ``copyin(u)`` in a
    script).
    """

    def __init__(self, meta: ProgramMeta | None = None):
        self.meta = meta if meta is not None else ProgramMeta()
        self.events: list[AccEvent] = []
        self.extents: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: AccEvent, sizes: dict[str, int] | None = None) -> AccEvent:
        """Append ``event`` (re-indexed to its program position); ``sizes``
        records the byte extents of any newly attached arrays."""
        event = replace(event, index=len(self.events))
        self.events.append(event)
        for name, nbytes in (sizes or {}).items():
            if nbytes:
                self.extents[name] = int(nbytes)
        return event

    # ------------------------------------------------------------------
    def computes(self) -> list[AccEvent]:
        return [e for e in self.events if e.kind == "compute"]

    def full_extent(self, event: AccEvent) -> bool:
        """Whether an update event moves the array's whole attached extent
        (unknown extents count as full — the conservative reading)."""
        if event.nbytes is None:
            return True
        known = self.extents.get(event.var or "", 0)
        return known > 0 and event.nbytes >= known

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def sha(self) -> str:
        """Content hash (sha256 hex) of the program's semantics.

        Covers every event field except ``label`` (labels carry script
        line numbers and phase names, which vary between frontends that
        produce the same schedule), plus the attached extents and the
        semantic :class:`ProgramMeta` fields — but not ``meta.source`` or
        ``meta.name``, so a re-recording of the same case under another
        name hashes equal. This is the staleness check between a program
        and a persisted opportunities artifact: apply a verified
        transformation only to the exact schedule it was proven on.
        """
        import hashlib

        h = hashlib.sha256()
        m = self.meta
        h.update(repr((
            m.device, m.warp_size, m.max_regs_per_thread,
            m.max_threads_per_block, m.compiler, m.vendor, m.maxregcount,
            m.auto_async,
        )).encode())
        h.update(repr(sorted(self.extents.items())).encode())
        for e in self.events:
            h.update(repr((
                e.kind, e.index, e.queue, e.copyin, e.create, e.delete,
                e.copyout, e.structured, e.direction, e.var, e.nbytes,
                e.chunks, e.offset, e.peer, e.construct, e.kernel,
                e.reads, e.writes, e.writes_known, repr(e.schedule),
                e.loop_dims, e.inner_contiguous, e.loop_carried, e.halo,
                e.regs_demand, e.wait_on, e.wait_all,
            )).encode())
        return h.hexdigest()


__all__ = ["AccEvent", "DirectiveProgram", "ProgramMeta", "KINDS"]
