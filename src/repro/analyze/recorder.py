"""Record a live :class:`~repro.acc.runtime.Runtime` into a DirectiveProgram.

The runtime exposes a recording hook (``Runtime.attach_recorder``); every
data/update/compute/wait directive it executes is re-emitted here as an
:class:`~repro.analyze.program.AccEvent`, so real pipeline runs produce the
same IR the script frontend builds — and the lint passes apply to both.
"""

from __future__ import annotations

from repro.analyze.program import AccEvent, DirectiveProgram, ProgramMeta


class ProgramRecorder:
    """Builds a :class:`DirectiveProgram` from runtime hook callbacks.

    Attach with ``rt.attach_recorder(recorder)`` *before* driving the
    runtime; read ``recorder.program`` afterwards. The recorder fills
    :class:`ProgramMeta` lazily from the runtime it is attached to (device
    spec, compiler persona, compile flags).
    """

    def __init__(self, name: str = "recorded"):
        self.program = DirectiveProgram(ProgramMeta(source="recorded", name=name))
        self._label: str | None = None

    # ------------------------------------------------------------------
    def bind_runtime(self, rt) -> None:
        """Called by ``Runtime.attach_recorder`` — captures the context."""
        spec = rt.device.spec
        self.program.meta = ProgramMeta(
            source="recorded",
            name=self.program.meta.name,
            device=spec.name,
            warp_size=spec.warp_size,
            max_regs_per_thread=spec.max_regs_per_thread,
            max_threads_per_block=spec.max_threads_per_block,
            compiler=rt.compiler.name,
            vendor=rt.compiler.vendor,
            maxregcount=rt.flags.maxregcount,
            auto_async=rt._auto_async,
        )

    def set_label(self, label: str | None) -> None:
        """Provenance tag stamped on subsequent events (pipeline phase)."""
        self._label = label

    # ------------------------------------------------------------------
    def record(self, kind: str, sizes: dict[str, int] | None = None, **fields) -> None:
        """The hook entry point: one directive executed by the runtime."""
        self.program.add(
            AccEvent(kind=kind, label=self._label, **fields), sizes=sizes
        )


__all__ = ["ProgramRecorder"]
