"""Record-and-lint drivers: run a pipeline schedule, lint its program.

``record_pipeline_program`` drives the Figure-4 offload pipeline in
estimate mode (no physics) with a :class:`ProgramRecorder` attached, so a
case's full directive sequence — data allocation, forward steps, the
offload/upload swap, backward steps, finalize — becomes a lintable
:class:`~repro.analyze.program.DirectiveProgram`.

``check_schedule`` is the pipeline's opt-in strict mode
(``GPUOptions.strict_lint``): it records a short dry run of the same
configuration and raises :class:`~repro.utils.errors.AnalysisError` if the
analyzer reports findings at or above the gate severity, *before* the real
run starts.
"""

from __future__ import annotations

from repro.analyze.framework import (
    LintResult,
    Severity,
    lint_program,
)
from repro.analyze.program import DirectiveProgram
from repro.analyze.recorder import ProgramRecorder
from repro.utils.errors import AnalysisError

#: step/snapshot caps of the strict-mode dry run — the directive pattern is
#: periodic, so a short run exhibits every per-step bug class
STRICT_NT = 16
STRICT_SNAP = 4


def record_pipeline_program(
    physics: str,
    shape: tuple[int, ...],
    mode: str = "rtm",
    nt: int = 24,
    snap_period: int = 4,
    options=None,
    platform=None,
    nreceivers: int = 16,
    space_order: int = 8,
    boundary_width: int = 8,
    pml_variant: str = "restructured",
    snapshot_decimate: int = 4,
    name: str | None = None,
) -> DirectiveProgram:
    """Run one case's offload schedule in estimate mode and return the
    recorded DirectiveProgram."""
    from repro.core.config import GPUOptions
    from repro.core.modeling import _build_runtime
    from repro.core.pipeline import (
        OffloadPipeline,
        run_pipeline_modeling,
        run_pipeline_rtm,
    )
    from repro.core.platform import CRAY_K40

    options = options if options is not None else GPUOptions()
    platform = platform if platform is not None else CRAY_K40
    rt = _build_runtime(options, platform)
    recorder = ProgramRecorder(
        name=name or f"{physics}-{len(shape)}d-{mode}"
    )
    rt.attach_recorder(recorder)
    pipeline = OffloadPipeline(
        rt,
        physics,
        shape,
        nreceivers=nreceivers,
        space_order=space_order,
        boundary_width=boundary_width,
        options=options,
        pml_variant=pml_variant,
    )
    if mode == "rtm":
        run_pipeline_rtm(pipeline, nt, snap_period)
    else:
        run_pipeline_modeling(
            pipeline, nt, snap_period, snapshot_decimate=snapshot_decimate
        )
    return recorder.program


def lint_pipeline(
    physics: str,
    shape: tuple[int, ...],
    mode: str = "rtm",
    passes=None,
    **kwargs,
) -> LintResult:
    """Record one case's schedule and run the passes over it (default:
    the four local passes; ``deep_passes()`` adds the dataflow engine)."""
    return lint_program(
        record_pipeline_program(physics, shape, mode, **kwargs), passes
    )


def check_schedule(
    physics: str,
    shape: tuple[int, ...],
    mode: str,
    options,
    platform,
    nreceivers: int = 16,
    space_order: int = 8,
    boundary_width: int = 8,
    pml_variant: str = "branchy",
    fail_on: Severity = Severity.ERROR,
) -> LintResult:
    """Strict-mode gate: lint a short dry run of this configuration —
    including the whole-program dataflow engine's coherence proofs — and
    raise :class:`AnalysisError` on findings at/above ``fail_on``."""
    from repro.analyze.framework import deep_passes

    result = lint_pipeline(
        physics,
        shape,
        mode,
        passes=deep_passes(),
        nt=STRICT_NT,
        snap_period=STRICT_SNAP,
        options=options,
        platform=platform,
        nreceivers=nreceivers,
        space_order=space_order,
        boundary_width=boundary_width,
        pml_variant=pml_variant,
        name=f"{physics}-{len(shape)}d-{mode} (strict dry run)",
    )
    if result.fails(fail_on):
        worst = [d for d in result.diagnostics if d.severity >= fail_on]
        head = "; ".join(
            f"{d.rule}: {d.message}" for d in worst[:3]
        )
        more = f" (+{len(worst) - 3} more)" if len(worst) > 3 else ""
        raise AnalysisError(
            f"strict lint refused the {physics}-{len(shape)}d {mode} "
            f"schedule: {len(worst)} finding(s) at or above "
            f"{str(fail_on)} — {head}{more}"
        )
    return result


__all__ = [
    "record_pipeline_program",
    "lint_pipeline",
    "check_schedule",
    "STRICT_NT",
    "STRICT_SNAP",
]
