"""Loop-schedule lint pass.

Checks each compute construct's scheduling clauses against the loop-nest
metadata and the modelled device limits — the paper's compiler findings,
caught before a run instead of measured after one:

* ``false-independent`` — ``independent`` asserted on a kernel whose body
  carries loop-carried writes (the original backward-phase kernels): the
  assertion silences the compiler's own dependence check, so this is an
  error;
* ``collapse-exceeds-depth`` — ``collapse(n)`` deeper than the nest;
* ``vector-length-not-warp-multiple`` — partial warps waste lanes;
* ``vector-length-exceeds-block-limit`` — the device cannot launch it;
* ``cray-kernels-vectorization`` — bare ``kernels`` under the CRAY persona
  lets the compiler pick the vectorized loop, and for stencil bodies it
  tends to pick a non-contiguous one (paper Figures 8-9): prefer
  ``parallel`` with explicit gang/worker/vector;
* ``uncoalesced-inner`` — the innermost parallel loop is not unit-stride
  (the Figure 13 transposition fix);
* ``maxregcount-spill`` / ``register-ceiling-spill`` — the occupancy
  model's register-demand estimate says the clamp (or the architecture)
  will spill to local memory (Figures 10 and 12).
"""

from __future__ import annotations

from repro.analyze.framework import Diagnostic, LintPass, Severity
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.gpusim.kernelmodel import REMAT_SLACK


class ScheduleLintPass(LintPass):
    name = "schedule-lint"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        meta = program.meta
        seen: set[tuple] = set()

        def once(key: tuple, diag: Diagnostic) -> None:
            """Kernels launch once per time step; report each rule once per
            kernel, not once per step."""
            if key not in seen:
                seen.add(key)
                out.append(diag)

        for e in program.events:
            if e.kind != "compute":
                continue
            s = e.schedule
            if s is not None:
                if s.independent and e.loop_carried:
                    once(("indep", e.kernel), self.diag(
                        "false-independent", Severity.ERROR,
                        f"kernel '{e.kernel}' declares loop independent but "
                        "its body has loop-carried writes — the assertion "
                        "overrides the compiler's dependence check and the "
                        "generated kernel is unordered", e.index, kernel=e.kernel,
                    ))
                if e.loop_dims and s.collapse > len(e.loop_dims):
                    once(("collapse", e.kernel), self.diag(
                        "collapse-exceeds-depth", Severity.ERROR,
                        f"kernel '{e.kernel}' collapses {s.collapse} levels "
                        f"but the nest is only {len(e.loop_dims)} deep",
                        e.index, kernel=e.kernel,
                    ))
                if s.vector and s.vector_length % meta.warp_size != 0:
                    once(("warpmul", e.kernel), self.diag(
                        "vector-length-not-warp-multiple", Severity.WARNING,
                        f"kernel '{e.kernel}' uses vector_length"
                        f"({s.vector_length}), not a multiple of the warp "
                        f"size {meta.warp_size} — partial warps idle lanes",
                        e.index, kernel=e.kernel,
                    ))
                if (
                    meta.max_threads_per_block is not None
                    and s.vector and s.vector_length > meta.max_threads_per_block
                ):
                    once(("blocklimit", e.kernel), self.diag(
                        "vector-length-exceeds-block-limit", Severity.ERROR,
                        f"kernel '{e.kernel}' requests vector_length"
                        f"({s.vector_length}) above the device block limit "
                        f"{meta.max_threads_per_block}", e.index, kernel=e.kernel,
                    ))
            if (
                meta.vendor == "cray"
                and e.construct == "kernels"
                and (s is None or not s.explicit)
            ):
                once(("craykernels", e.kernel), self.diag(
                    "cray-kernels-vectorization", Severity.WARNING,
                    f"kernel '{e.kernel}': bare kernels under the CRAY "
                    "compiler lets the heuristic choose the vectorized loop "
                    "and stencil bodies often get a non-contiguous one "
                    "(paper Figs 8-9) — use parallel with explicit "
                    "gang/worker/vector", e.index, kernel=e.kernel,
                ))
            if not e.inner_contiguous:
                once(("coalesce", e.kernel), self.diag(
                    "uncoalesced-inner", Severity.WARNING,
                    f"kernel '{e.kernel}': the innermost parallel loop is "
                    "not unit-stride, so warp accesses splinter into many "
                    "memory transactions — transpose or reorder the nest "
                    "(paper Fig 13)", e.index, kernel=e.kernel,
                ))
            out_spill = self._spill_diag(meta, e)
            if out_spill is not None:
                once((out_spill.rule, e.kernel), out_spill)
        return out

    # ------------------------------------------------------------------
    def _spill_diag(self, meta, e: AccEvent) -> Diagnostic | None:
        """Register-pressure check against the occupancy model's demand
        estimate (recorded programs carry it; scripts can annotate
        ``regs=N``)."""
        demand = e.regs_demand
        if demand is None:
            return None
        arch_max = meta.max_regs_per_thread
        if arch_max is not None and demand > arch_max:
            return self.diag(
                "register-ceiling-spill", Severity.WARNING,
                f"kernel '{e.kernel}' demands ~{demand} registers/thread, "
                f"above the architectural ceiling {arch_max} — unavoidable "
                "spills to local memory; consider loop fission (paper "
                "Fig 12)", e.index, kernel=e.kernel,
            )
        clamp = meta.maxregcount
        if clamp is not None and clamp < demand:
            hard = int((demand - clamp) - REMAT_SLACK * demand)
            if hard > 0:
                return self.diag(
                    "maxregcount-spill", Severity.WARNING,
                    f"kernel '{e.kernel}': maxregcount:{clamp} is "
                    f"{demand - clamp} below the ~{demand}-register demand "
                    f"and rematerialization absorbs only part of it (~{hard} "
                    "registers spill) — raise maxregcount (paper Fig 10)",
                    e.index, kernel=e.kernel,
                )
        return None


__all__ = ["ScheduleLintPass"]
