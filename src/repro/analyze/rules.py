"""The shared coherence-rule registry: one record per bug class.

Every coherence bug class this project detects has up to two detectors —
the *dynamic* sanitizer pass (:mod:`repro.sanitize.session`), which flags
it on an executed schedule, and the *static* dataflow engine
(:mod:`repro.analyze.dataflow`), which proves or refutes it on the
recorded :class:`~repro.analyze.program.DirectiveProgram` before any run.
Both detectors draw their code, message template and docs anchor from
this registry, so a bug class is documented once and the two findings are
trivially matchable (the static rule id is ``<code>-<key>``, e.g.
``DF001-stale-device-read``).

``DF0xx`` codes mirror the sanitizer's five dynamic rules; ``DF1xx``
codes are static-only cross-rank findings (message matching and deadlock
detection have no dynamic counterpart — a deadlocked run never returns).
``DF2xx`` codes are static-only verification findings: ``DF201``-``DF204``
are emitted by the translation validator (:mod:`repro.compile.validate`),
which proves a compiled pipeline's lowered schedule simulates the
recorded program, and ``DF210``/``DF211`` by the capacity prover
(:mod:`repro.analyze.capacity`), which bounds device residency and
register pressure before any allocation happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.framework import Severity


@dataclass(frozen=True)
class Rule:
    """One bug class: identity, detectors, message templates, docs."""

    key: str
    #: static diagnostic code (``DF...``)
    code: str
    severity: Severity
    #: dynamic sanitizer pass name (None = static-only rule)
    dynamic_pass: str | None
    #: static dataflow pass name (None = dynamic-only rule; unused today)
    static_pass: str | None
    title: str
    #: ``str.format`` template both detectors feed
    message: str
    #: alternate template for the rule's secondary phrasing, when one
    #: exists (e.g. short-ghost-transfer's decomposition-geometry variant)
    alt_message: str | None
    #: docs/analysis.md anchor documenting the bug class
    anchor: str

    @property
    def static_rule(self) -> str:
        """The rule id static diagnostics carry: ``DF001-stale-device-read``."""
        return f"{self.code}-{self.key}"

    def format(self, **fields) -> str:
        return self.message.format(**fields)

    def format_alt(self, **fields) -> str:
        assert self.alt_message is not None
        return self.alt_message.format(**fields)


_RULES = (
    Rule(
        key="stale-device-read",
        code="DF001",
        severity=Severity.ERROR,
        dynamic_pass="coherence",
        static_pass="dataflow",
        title="Device consumer reads host-dirty bytes",
        message=(
            "{consumer} reads '{var}' {ranges} the host wrote but no "
            "update device pushed — the device copy is stale"
        ),
        alt_message=(
            "copyout of '{var}' reads {ranges} the host wrote but no "
            "update device pushed — the device copy is stale"
        ),
        anchor="stale-device-read",
    ),
    Rule(
        key="stale-host-read",
        code="DF002",
        severity=Severity.ERROR,
        dynamic_pass="coherence",
        static_pass="dataflow",
        title="Host consumer reads device-dirty bytes",
        message=(
            "{consumer} consumes '{var}' {ranges} a kernel may have "
            "written but no update host pulled — the host copy is stale"
        ),
        alt_message=None,
        anchor="stale-host-read",
    ),
    Rule(
        key="short-ghost-transfer",
        code="DF003",
        severity=Severity.ERROR,
        dynamic_pass="ghost",
        static_pass="dataflow",
        title="Ghost refresh narrower than the stencil radius",
        message=(
            "ghost refresh of '{var}' moved {moved} bytes but the stencil "
            "radius {halo} needs {required} — kernel '{kernel}' reads "
            "{ranges} stale"
        ),
        alt_message=(
            "decomposition halo is {have} plane(s) but the stencil radius "
            "needs {need} — every exchange under-fills the ghost zones"
        ),
        anchor="short-ghost-transfer",
    ),
    Rule(
        key="ghost-transfer-out-of-bounds",
        code="DF004",
        severity=Severity.ERROR,
        dynamic_pass="ghost",
        static_pass="dataflow",
        title="Partial update runs past the array extent",
        message=(
            "update {direction} of '{var}' bytes [{lo}, {hi}) runs past "
            "the array extent {extent}"
        ),
        alt_message=None,
        anchor="ghost-transfer-out-of-bounds",
    ),
    Rule(
        key="halo-send-before-sync",
        code="DF005",
        severity=Severity.ERROR,
        dynamic_pass="rank-race",
        static_pass="dataflow",
        title="Host consumer races an in-flight async update host",
        message=(
            "{consumer} of '{var}' bytes [{lo}, {hi}) races the "
            "asynchronous update host on queue {queue} still filling it — "
            "no wait({queue}) orders the pair"
        ),
        alt_message=None,
        anchor="halo-send-before-sync",
    ),
    Rule(
        key="unmatched-send",
        code="DF101",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="dataflow-rank",
        title="Send with no matching receive",
        message=(
            "send of '{var}' to rank {peer} (event {idx}) has no matching "
            "receive on rank {peer} — the message is lost (or the channel "
            "counts diverge)"
        ),
        alt_message=None,
        anchor="unmatched-send",
    ),
    Rule(
        key="unmatched-recv",
        code="DF102",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="dataflow-rank",
        title="Receive with no matching send",
        message=(
            "receive of '{var}' from rank {peer} (event {idx}) has no "
            "matching send on rank {peer} — the receive blocks forever"
        ),
        alt_message=None,
        anchor="unmatched-recv",
    ),
    Rule(
        key="send-recv-deadlock",
        code="DF103",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="dataflow-rank",
        title="Cross-rank receive cycle",
        message=(
            "send/recv wait cycle across ranks {ranks}: {detail} — every "
            "rank in the cycle blocks on a receive whose send sits behind "
            "another blocked receive"
        ),
        alt_message=None,
        anchor="send-recv-deadlock",
    ),
    Rule(
        key="dependence-edge-not-preserved",
        code="DF201",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="translation-validate",
        title="Lowered schedule drops a dependence edge",
        message=(
            "{kind} dependence on '{var}' (events {src} -> {dst}) is not "
            "preserved by the lowered schedule — {detail}"
        ),
        alt_message=None,
        anchor="dependence-edge-not-preserved",
    ),
    Rule(
        key="hoist-not-dominated",
        code="DF202",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="translation-validate",
        title="Hoisted update not dominated by its last writer",
        message=(
            "hoisted update {direction} of '{var}' (event {idx}) is not "
            "dominated by its last writer — {detail} invalidates the "
            "prologue copy"
        ),
        alt_message=None,
        anchor="hoist-not-dominated",
    ),
    Rule(
        key="fused-access-overlap",
        code="DF203",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="translation-validate",
        title="Fused kernel's merged accesses conflict with an intervening event",
        message=(
            "fused kernel '{kernel}' merges accesses to '{var}' that "
            "conflict with intervening event {idx} ({detail}) — the fusion "
            "reorders it past the merge point"
        ),
        alt_message=None,
        anchor="fused-access-overlap",
    ),
    Rule(
        key="cross-rank-reorder",
        code="DF204",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="translation-validate",
        title="Per-rank reorder perturbs the message schedule",
        message=(
            "rank {rank}'s reordered schedule changes its send/recv "
            "sequence ({detail}) — the cross-rank matching recorded by the "
            "interpreter no longer holds"
        ),
        alt_message=None,
        anchor="cross-rank-reorder",
    ),
    Rule(
        key="device-over-capacity",
        code="DF210",
        severity=Severity.ERROR,
        dynamic_pass=None,
        static_pass="capacity",
        title="Proven device-residency high-water mark exceeds usable memory",
        message=(
            "peak device residency {peak} bytes ({detail}) exceeds the "
            "usable {usable} bytes of {device} — the run would OOM at "
            "event {idx} before any recovery could help"
        ),
        alt_message=None,
        anchor="device-over-capacity",
    ),
    Rule(
        key="checkpoint-spike",
        code="DF211",
        severity=Severity.WARNING,
        dynamic_pass=None,
        static_pass="capacity",
        title="Checkpoint-restore spike approaches usable memory",
        message=(
            "checkpoint restore adds {spike} bytes on top of the backward "
            "phase's {base} resident bytes ({detail}) — the combined "
            "{total} bytes exceeds the usable {usable} bytes of {device}"
        ),
        alt_message=None,
        anchor="checkpoint-spike",
    ),
)

#: rule key -> :class:`Rule`
REGISTRY: dict[str, Rule] = {r.key: r for r in _RULES}

#: dynamic hazard code -> sanitizer pass name (the sanitizer's view of the
#: registry; re-exported as ``repro.sanitize.PASSES``)
DYNAMIC_PASSES: dict[str, str] = {
    r.key: r.dynamic_pass for r in _RULES if r.dynamic_pass is not None
}

#: static rule id (``DF001-stale-device-read``) -> rule key
STATIC_RULE_IDS: dict[str, str] = {r.static_rule: r.key for r in _RULES}


def rule(key: str) -> Rule:
    return REGISTRY[key]


def rule_for_static_id(rule_id: str) -> Rule | None:
    """Resolve a static diagnostic's ``rule`` field back to its registry
    record (None for non-registry rules, e.g. the four local lint passes)."""
    key = STATIC_RULE_IDS.get(rule_id)
    return REGISTRY[key] if key is not None else None


__all__ = [
    "Rule",
    "REGISTRY",
    "DYNAMIC_PASSES",
    "STATIC_RULE_IDS",
    "rule",
    "rule_for_static_id",
]
