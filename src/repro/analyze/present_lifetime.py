"""Present-table lifetime pass.

Statically replays the OpenACC present table over the event sequence and
flags the lifetime bugs the paper fights by hand in its Section 5.1:

* ``use-before-copyin`` — a kernel, update or copyout references an array
  with no live device copy (the runtime's ``PresentTableError``, caught
  before running);
* ``double-delete`` — ``exit data`` detaching data that was never entered
  (or already freed);
* ``leaked-enter-data`` — data still attached when the program ends;
* ``dead-copyout`` — a copyout of an array no device-side event ever wrote
  (suppressed while any kernel with an unknown write set touches it);
* ``redundant-update-device`` — refreshing device data whose host copy has
  not changed since the last host-to-device transfer;
* ``hoistable-data-region`` — the same enter/exit name set cycled many
  times (per-step data regions the paper hoists into one persistent
  ``enter data``/``exit data`` pair around the time loop).
"""

from __future__ import annotations

from repro.analyze.framework import Diagnostic, LintPass, Severity
from repro.analyze.program import AccEvent, DirectiveProgram

#: enter/exit cycles of one name set before we suggest hoisting
HOIST_THRESHOLD = 3


class PresentLifetimePass(LintPass):
    name = "present-lifetime"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        refcount: dict[str, int] = {}
        #: names written on the device since their 0->1 attach
        device_written: set[str] = set()
        #: names whose host copy changed since the last h2d transfer
        host_dirty: set[str] = set()
        #: names a not-fully-analysed kernel may have written
        maybe_written: set[str] = set()
        #: consecutive enter/exit cycles per name set
        cycles: dict[tuple[str, ...], int] = {}
        hoist_reported: set[tuple[str, ...]] = set()

        def absent(name: str) -> bool:
            return refcount.get(name, 0) <= 0

        for e in program.events:
            if e.kind == "enter":
                for name in e.copyin + e.create:
                    refcount[name] = refcount.get(name, 0) + 1
                    if refcount[name] == 1:
                        device_written.discard(name)
                        maybe_written.discard(name)
                for name in e.copyin:
                    host_dirty.discard(name)
            elif e.kind == "exit":
                for name in e.copyout:
                    if absent(name):
                        out.append(self.diag(
                            "use-before-copyin", Severity.ERROR,
                            f"copyout of '{name}' which is not present on the "
                            "device", e.index, var=name,
                        ))
                        continue
                    if (
                        name not in device_written
                        and name not in maybe_written
                    ):
                        out.append(self.diag(
                            "dead-copyout", Severity.WARNING,
                            f"copyout of '{name}' but no kernel or update "
                            "device ever wrote it — the transfer moves stale "
                            "bytes", e.index, var=name,
                        ))
                    self._detach(refcount, name)
                for name in e.delete:
                    if absent(name):
                        out.append(self.diag(
                            "double-delete", Severity.ERROR,
                            f"exit data delete of '{name}' which was never "
                            "entered (or already freed)", e.index, var=name,
                        ))
                        continue
                    self._detach(refcount, name)
                key = tuple(sorted(e.copyout + e.delete))
                if key:
                    cycles[key] = cycles.get(key, 0) + 1
                    if (
                        cycles[key] >= HOIST_THRESHOLD
                        and key not in hoist_reported
                    ):
                        hoist_reported.add(key)
                        out.append(self.diag(
                            "hoistable-data-region", Severity.WARNING,
                            f"data region over ({', '.join(key)}) entered and "
                            f"exited {cycles[key]}+ times — hoist into one "
                            "persistent enter/exit data pair around the time "
                            "loop (paper S5.1: data stays resident across "
                            "steps)", e.index,
                        ))
            elif e.kind == "update":
                name = e.var or ""
                if absent(name):
                    out.append(self.diag(
                        "use-before-copyin", Severity.ERROR,
                        f"update {e.direction}({name}) but '{name}' is not "
                        "present on the device (missing enter data copyin?)",
                        e.index, var=name,
                    ))
                    continue
                if e.direction == "device":
                    if name not in host_dirty and name not in maybe_written:
                        out.append(self.diag(
                            "redundant-update-device", Severity.WARNING,
                            f"update device({name}) but the host copy has not "
                            "changed since the last host-to-device transfer — "
                            "the copy moves identical bytes", e.index, var=name,
                        ))
                    host_dirty.discard(name)
                    device_written.add(name)
                else:
                    host_dirty.discard(name)  # host now mirrors the device
                    maybe_written.discard(name)
            elif e.kind == "compute":
                for name in e.reads + e.writes:
                    if absent(name):
                        out.append(self.diag(
                            "use-before-copyin", Severity.ERROR,
                            f"kernel '{e.kernel}' references '{name}' with no "
                            "live device copy (present clause would fail at "
                            "run time)", e.index, var=name, kernel=e.kernel,
                        ))
                device_written.update(e.writes)
                if not e.writes_known:
                    # conservative: the kernel may write anything it touches
                    maybe_written.update(e.reads)
            elif e.kind == "host_write":
                host_dirty.update(e.writes)

        leaked = sorted(n for n, c in refcount.items() if c > 0)
        if leaked:
            out.append(self.diag(
                "leaked-enter-data", Severity.WARNING,
                f"still attached when the program ends: {', '.join(leaked)} "
                "(missing exit data delete/copyout)",
                len(program.events) - 1 if program.events else None,
            ))
        return out

    @staticmethod
    def _detach(refcount: dict[str, int], name: str) -> None:
        refcount[name] = refcount.get(name, 0) - 1


__all__ = ["PresentLifetimePass", "HOIST_THRESHOLD"]
