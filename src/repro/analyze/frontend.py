"""Build a DirectiveProgram straight from an ``!$acc`` directive script.

Reuses :func:`repro.acc.parser.parse_directive`, so anything the runtime
executes can also be linted without running it. A script is one directive
per line; blank lines and plain comments are skipped. Structured ``data``
regions close with ``!$acc end data``.

Because a text script carries no kernel bodies, the analyzer accepts
sidecar annotations on ``!$lint`` lines:

* ``!$lint host_writes(u, v)`` — a standalone event marking host-side
  mutation of the named arrays (what makes a following ``update device``
  *non*-redundant); an optional ``bytes=N offset=M`` suffix restricts the
  marker to a byte range (a ghost slab landing from a receive);
* ``!$lint host_reads(u)`` — host-side consumption of the named arrays
  (host I/O packing a buffer), with the same optional range suffix;
* ``!$lint send(u) to=1`` / ``!$lint recv(u) from=1`` — an MPI transfer
  of the *host* copy (the sanitizer's cross-rank message edges), with the
  same optional range suffix;
* ``!$lint extent(u=65536)`` — declares array byte extents a bare
  ``copyin(u)`` cannot carry (partial-range checks need them);
* ``!$lint key=value ...`` — metadata attached to the *next* compute
  construct: ``name=fwd``, ``dims=512x512``, ``reads=u,v``, ``writes=u``,
  ``contiguous=false``, ``carried=true`` (loop-carried writes), ``halo=4``
  (stencil half-width), ``regs=96`` (register demand) — or to the next
  ``update`` directive: ``bytes=N offset=M`` (partial extent).

Example::

    !$acc enter data copyin(u, v)
    !$lint name=stencil dims=512x512 reads=u,v writes=u halo=4
    !$acc parallel loop gang vector vector_length(128) async(1)
    !$acc wait(1)
    !$acc exit data delete(u, v)
"""

from __future__ import annotations

import re

from repro.acc.parser import parse_directive
from repro.analyze.program import AccEvent, DirectiveProgram, ProgramMeta
from repro.utils.errors import ConfigurationError

_LINT_SENTINEL = "!$lint"
_MARKER_RE = re.compile(
    r"(host_writes|host_reads|send|recv|extent)\s*\(([^)]*)\)\s*(.*)",
    re.IGNORECASE,
)
_KV_RE = re.compile(r"([a-z_]+)\s*=\s*(\S+)", re.IGNORECASE)
#: queues available to bare ``async`` round-robin (mirrors the runtime's
#: ``_queue_for`` against a 16-queue device)
_BARE_ASYNC_QUEUES = 15


def _names(text: str) -> tuple[str, ...]:
    return tuple(n.strip() for n in text.split(",") if n.strip())


def _bool(value: str) -> bool:
    return value.lower() in ("1", "true", "yes", "on")


def _parse_annotation(body: str, lineno: int) -> dict:
    meta: dict = {}
    for m in _KV_RE.finditer(body):
        key, value = m.group(1).lower(), m.group(2)
        if key == "name":
            meta["kernel"] = value
        elif key == "dims":
            meta["loop_dims"] = tuple(
                int(d) for d in value.lower().split("x") if d
            )
        elif key == "reads":
            meta["reads"] = _names(value)
        elif key == "writes":
            meta["writes"] = _names(value)
            meta["writes_known"] = True
        elif key == "contiguous":
            meta["inner_contiguous"] = _bool(value)
        elif key == "carried":
            meta["loop_carried"] = _bool(value)
        elif key == "halo":
            meta["halo"] = int(value)
        elif key == "regs":
            meta["regs_demand"] = int(value)
        elif key == "bytes":
            meta["nbytes"] = int(value)
        elif key == "offset":
            meta["offset"] = int(value)
        else:
            raise ConfigurationError(
                f"line {lineno}: unknown !$lint key '{key}'"
            )
    return meta


def _marker_range(suffix: str, lineno: int) -> dict:
    """The optional ``bytes=N offset=M to=R from=R`` suffix of a marker."""
    out: dict = {}
    for m in _KV_RE.finditer(suffix):
        key, value = m.group(1).lower(), m.group(2)
        if key == "bytes":
            out["nbytes"] = int(value)
        elif key == "offset":
            out["offset"] = int(value)
        elif key in ("to", "from"):
            out["peer"] = int(value)
        else:
            raise ConfigurationError(
                f"line {lineno}: unknown marker key '{key}'"
            )
    return out


def program_from_script(
    text: str, meta: ProgramMeta | None = None
) -> DirectiveProgram:
    """Parse a directive script into a :class:`DirectiveProgram`."""
    program = DirectiveProgram(
        meta if meta is not None else ProgramMeta(source="script")
    )
    pending: dict = {}
    data_stack: list[tuple[str, ...]] = []
    next_queue = 1

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        low = line.lower()
        if not line:
            continue
        if low.startswith(_LINT_SENTINEL):
            body = line[len(_LINT_SENTINEL):].strip()
            marker = _MARKER_RE.match(body)
            if marker:
                what = marker.group(1).lower()
                names = _names(marker.group(2))
                extra = _marker_range(marker.group(3), lineno)
                if what == "extent":
                    for m in _KV_RE.finditer(marker.group(2)):
                        program.extents[m.group(1)] = int(m.group(2))
                elif what == "host_writes":
                    extra.pop("peer", None)
                    program.add(AccEvent(
                        kind="host_write", writes=names,
                        label=f"line {lineno}", **extra,
                    ))
                elif what == "host_reads":
                    extra.pop("peer", None)
                    program.add(AccEvent(
                        kind="host_read", reads=names,
                        label=f"line {lineno}", **extra,
                    ))
                else:  # send / recv
                    for name in names:
                        program.add(AccEvent(
                            kind=what, var=name,
                            label=f"line {lineno}", **extra,
                        ))
            else:
                pending.update(_parse_annotation(body, lineno))
            continue
        if (line.startswith("!") or line.startswith("#")) and "acc" not in low:
            continue  # plain comment
        if re.match(r"^(!\$acc|#pragma acc)\s+end\s+data\b", low):
            if not data_stack:
                raise ConfigurationError(
                    f"line {lineno}: 'end data' without an open data region"
                )
            attached = data_stack.pop()
            program.add(AccEvent(
                kind="exit", delete=attached, structured=True,
                label=f"line {lineno}",
            ))
            continue
        d = parse_directive(line)
        label = f"line {lineno}"
        if d.construct == "enter data" or d.construct == "data":
            copyin = d.data.get("copyin", ()) + d.data.get("copy", ())
            create = d.data.get("create", ()) + (
                d.data.get("copyout", ()) if d.construct == "data" else ()
            )
            structured = d.construct == "data"
            program.add(AccEvent(
                kind="enter", copyin=copyin, create=create,
                structured=structured, label=label,
            ))
            if structured:
                data_stack.append(copyin + create)
        elif d.construct == "exit data":
            program.add(AccEvent(
                kind="exit", delete=d.data.get("delete", ()),
                copyout=d.data.get("copyout", ()), label=label,
            ))
        elif d.construct == "update":
            nbytes = pending.pop("nbytes", None)
            offset = pending.pop("offset", 0)
            for name in d.update_host:
                program.add(AccEvent(
                    kind="update", direction="host", var=name,
                    nbytes=nbytes, offset=offset,
                    queue=_resolve_queue(d.async_, None)[0], label=label,
                ))
            for name in d.update_device:
                program.add(AccEvent(
                    kind="update", direction="device", var=name,
                    nbytes=nbytes, offset=offset,
                    queue=_resolve_queue(d.async_, None)[0], label=label,
                ))
        elif d.construct == "wait":
            program.add(AccEvent(kind="wait", wait_on=d.wait_on, label=label))
        elif d.construct in ("kernels", "parallel", "loop"):
            queue, next_queue = _resolve_queue(d.async_, next_queue)
            present = d.data.get("present", ())
            reads = tuple(dict.fromkeys(
                present + d.data.get("copyin", ()) + d.data.get("copy", ())
                + pending.get("reads", ())
            ))
            writes = tuple(dict.fromkeys(
                d.data.get("copyout", ()) + d.data.get("copy", ())
                + pending.get("writes", ())
            ))
            program.add(AccEvent(
                kind="compute",
                construct="kernels" if d.construct == "kernels" else "parallel",
                kernel=pending.get("kernel", f"k{lineno}"),
                queue=queue,
                reads=reads,
                writes=writes,
                writes_known=pending.get("writes_known", False),
                schedule=d.schedule,
                loop_dims=pending.get("loop_dims", ()),
                inner_contiguous=pending.get("inner_contiguous", True),
                loop_carried=pending.get("loop_carried", False),
                halo=pending.get("halo"),
                regs_demand=pending.get("regs_demand"),
                wait_on=d.wait_on,
                wait_all=d.wait_all,
                label=label,
            ))
            pending = {}
        elif d.construct == "cache":
            continue  # present-checked at run time; nothing to lint yet
        else:  # pragma: no cover - parser already rejects the rest
            raise ConfigurationError(
                f"line {lineno}: cannot lint construct '{d.construct}'"
            )
    if data_stack:
        raise ConfigurationError(
            f"unclosed data region attaching {', '.join(data_stack[-1])}"
        )
    return program


def _resolve_queue(
    async_: int | bool | None, next_queue: int | None
) -> tuple[int | None, int | None]:
    """Map an ``async`` clause to a queue id. Bare ``async`` round-robins
    like the runtime's auto-queue assignment."""
    if async_ is None or async_ is False:
        return None, next_queue
    if async_ is True:
        q = next_queue if next_queue is not None else 1
        nxt = (q % _BARE_ASYNC_QUEUES) + 1
        return q, nxt
    return int(async_), next_queue


__all__ = ["program_from_script"]
