"""Transfer-efficiency pass.

Flags PCIe traffic the directive sequence moves but the stencil maths does
not need — the paper's Section 5.1 partial ghost-node updates:

* ``full-update-in-loop`` — an array is refreshed with a *full-extent*
  ``update`` repeatedly (per step) while also being consumed by compute
  kernels each cycle. When a stencil half-width is known (recorded halo
  metadata or a ``!$lint halo=N`` annotation) only the ghost planes need
  moving, and the suggested extent is quantified;
* ``strided-update`` — a partial update issued as many non-contiguous
  chunks: each chunk pays a DMA setup, so pack the halo planes into a
  contiguous buffer first (what :mod:`repro.mpisim.halo` does).

Snapshot-style transfers (isolated full updates, or updates preceded by a
host-side write marker — the RTM wavefield reload) are not flagged: those
genuinely need the whole field.
"""

from __future__ import annotations

from repro.analyze.framework import Diagnostic, LintPass, Severity
from repro.analyze.program import DirectiveProgram

#: full-extent refreshes of one array before the per-step rule fires
REPEAT_THRESHOLD = 3
#: chunk count above which a strided update is worth packing
CHUNK_THRESHOLD = 32


class TransferEfficiencyPass(LintPass):
    name = "transfer-efficiency"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        #: (var, direction) -> [(event index, explained-by-host-write)]
        repeats: dict[tuple[str, str], list[tuple[int, bool]]] = {}
        host_dirty: set[str] = set()
        #: stencil half-width per consumed array (from compute halo metadata)
        halo_of: dict[str, int] = {}
        dims_of: dict[str, tuple[int, ...]] = {}

        for e in program.events:
            if e.kind == "host_write":
                host_dirty.update(e.writes)
            elif e.kind == "compute":
                if e.halo:
                    for name in e.reads + e.writes:
                        halo_of[name] = max(halo_of.get(name, 0), e.halo)
                        if e.loop_dims:
                            dims_of[name] = e.loop_dims
            elif e.kind == "update":
                name = e.var or ""
                if e.chunks > CHUNK_THRESHOLD and not program.full_extent(e):
                    out.append(self.diag(
                        "strided-update", Severity.INFO,
                        f"update {e.direction}({name}) moves {e.chunks} "
                        "non-contiguous chunks — pack the ghost planes into "
                        "a contiguous buffer to pay one DMA setup instead",
                        e.index, var=name,
                    ))
                if program.full_extent(e):
                    explained = e.direction == "device" and name in host_dirty
                    if explained:
                        host_dirty.discard(name)
                    repeats.setdefault((name, e.direction or ""), []).append(
                        (e.index, explained)
                    )

        for (name, direction), hits in repeats.items():
            if len(hits) < REPEAT_THRESHOLD:
                continue
            anchor = hits[REPEAT_THRESHOLD - 1][0]
            if name in halo_of:
                # whether or not the host wrote, the stencil's half-width
                # says only the ghost planes needed moving
                suggestion = self._halo_suggestion(program, name, halo_of, dims_of)
                out.append(self.diag(
                    "full-update-in-loop", Severity.WARNING,
                    f"update {direction}({name}) moves the full extent "
                    f"{len(hits)} times but the stencil half-width implies "
                    f"a partial ghost-node extent{suggestion} (paper S5.1)",
                    anchor, var=name,
                ))
            elif sum(1 for _, explained in hits if not explained) >= REPEAT_THRESHOLD:
                # no stencil metadata: only hint when the host-side writes
                # don't account for the traffic (snapshot restores do)
                out.append(self.diag(
                    "repeated-full-update", Severity.INFO,
                    f"update {direction}({name}) moves the full extent "
                    f"{len(hits)} times — if only boundary planes change "
                    "per step, a partial extent would cut the PCIe traffic",
                    anchor, var=name,
                ))
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _halo_suggestion(
        program: DirectiveProgram,
        name: str,
        halo_of: dict[str, int],
        dims_of: dict[str, tuple[int, ...]],
    ) -> str:
        halo = halo_of.get(name)
        if not halo:
            return ""
        dims = dims_of.get(name, ())
        total = program.extents.get(name, 0)
        if dims and total:
            outer = dims[0]
            if outer > 2 * halo:
                frac = 2 * halo / outer
                part = int(total * frac)
                return (
                    f"; with stencil half-width {halo} a partial extent of "
                    f"~{part} bytes ({frac:.0%} of the field) suffices"
                )
        return f"; with stencil half-width {halo} only 2x{halo} planes need moving"


__all__ = ["TransferEfficiencyPass", "REPEAT_THRESHOLD", "CHUNK_THRESHOLD"]
