"""Static device-capacity prover over the event IR.

Abstract-interprets a :class:`~repro.analyze.program.DirectiveProgram`'s
``enter``/``exit`` lifetime events into a per-phase device-residency
high-water mark — the same 256-byte-aligned accounting
:class:`~repro.gpusim.memory.DeviceMemory` performs, so the proven peak
matches what ``gpu.peak_bytes`` will observe, bit for bit, before any
allocation happens. Two findings share the ``DF2xx`` registry
(:mod:`repro.analyze.rules`):

* ``DF210`` *device-over-capacity* — the proven peak exceeds the card's
  :attr:`~repro.gpusim.memory.DeviceMemory.usable_bytes`; the run would
  OOM, and the prover can refuse it statically (the paper's "forward and
  backward wave-field variables of RTM cannot be allocated at the same
  time" constraint, decided without allocating anything).
* ``DF211`` *checkpoint-spike* — the backward phase fits, but restoring a
  checkpointed state (:func:`~repro.core.checkpointing.plan_checkpoints`)
  stages one more full wavefield on top of the backward residency and
  that combined transient does not.

The second half prices register pressure/occupancy of fused kernels
(:func:`register_bound`, :func:`admissible_maxregcounts`) through the
same models the roofline uses (:mod:`repro.optim.tuning`), so the
compiler's fusion pricing and the autotuner's ``maxregcount`` search
consult *proven* bounds rather than re-deriving them per call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.framework import Diagnostic
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.analyze.rules import rule
from repro.gpusim.memory import _aligned
from repro.gpusim.specs import CUDA_5_0, CudaToolkit, GPUSpec
from repro.utils.units import bytes_to_human

PASS_NAME = "capacity"


# ----------------------------------------------------------------------
# residency abstract interpretation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseResidency:
    """One phase's proven residency high-water mark."""

    phase: str
    high_water: int
    #: event index at which the phase peak is reached
    at_event: int
    #: live ``(name, aligned_bytes)`` pairs at the peak
    resident: tuple[tuple[str, int], ...]


@dataclass
class CapacityProof:
    """The prover's verdict for one program on one card."""

    peak_bytes: int = 0
    peak_event: int = -1
    resident_at_peak: tuple[tuple[str, int], ...] = ()
    #: event indices of the ``enter`` events whose allocations are live at
    #: the peak — the would-OOM witness chain
    witness: tuple[int, ...] = ()
    phases: list[PhaseResidency] = field(default_factory=list)
    usable_bytes: int | None = None
    device: str | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def fits(self) -> bool:
        return self.usable_bytes is None or self.peak_bytes <= self.usable_bytes

    def phase_peak(self, phase: str) -> int:
        """High-water mark of every phase whose name contains ``phase``."""
        return max(
            (p.high_water for p in self.phases if phase in p.phase), default=0
        )

    def symbolic(self, field_bytes: int) -> str:
        """The peak expressed in grid terms: ``'9 fields + 2304 B'``."""
        if field_bytes <= 0:
            return f"{self.peak_bytes} B"
        fields, rem = divmod(self.peak_bytes, field_bytes)
        expr = f"{fields} x {bytes_to_human(field_bytes)} field"
        return f"{expr} + {rem} B" if rem else expr

    def to_dict(self) -> dict:
        return {
            "peak_bytes": self.peak_bytes,
            "peak_event": self.peak_event,
            "usable_bytes": self.usable_bytes,
            "device": self.device,
            "fits": self.fits,
            "phases": [
                {"phase": p.phase, "high_water": p.high_water,
                 "at_event": p.at_event}
                for p in self.phases
            ],
            "resident_at_peak": [list(r) for r in self.resident_at_peak],
        }


def _released(event: AccEvent) -> tuple[str, ...]:
    """Names an ``exit`` event frees (``copyout`` implies delete)."""
    return tuple(dict.fromkeys(event.delete + event.copyout))


def prove_capacity(
    program: DirectiveProgram,
    usable_bytes: int | None = None,
    device: str | None = None,
    phase_of=None,
) -> CapacityProof:
    """Walk the program's lifetime events under the allocator's alignment
    and return the proven high-water marks (plus a ``DF210`` diagnostic
    when ``usable_bytes`` is given and the peak exceeds it).

    ``phase_of`` maps an event index to a phase name; by default the
    event's recorded ``label`` is used (the pipeline recorder stamps phase
    names there), falling back to ``"program"``.
    """
    if phase_of is None:
        def phase_of(idx: int) -> str:
            label = program.events[idx].label
            return label if label else "program"

    proof = CapacityProof(usable_bytes=usable_bytes, device=device)
    resident: dict[str, int] = {}
    alloc_event: dict[str, int] = {}
    used = 0
    phase_marks: dict[str, PhaseResidency] = {}
    for event in program.events:
        if event.kind == "enter":
            for name in event.copyin + event.create:
                if name in resident:
                    continue
                nbytes = _aligned(program.extents.get(name, 0))
                resident[name] = nbytes
                alloc_event[name] = event.index
                used += nbytes
        elif event.kind == "exit":
            for name in _released(event):
                used -= resident.pop(name, 0)
                alloc_event.pop(name, None)
        else:
            continue
        phase = phase_of(event.index)
        mark = phase_marks.get(phase)
        if mark is None or used > mark.high_water:
            phase_marks[phase] = PhaseResidency(
                phase, used, event.index, tuple(sorted(resident.items()))
            )
        if used > proof.peak_bytes:
            proof.peak_bytes = used
            proof.peak_event = event.index
            proof.resident_at_peak = tuple(sorted(resident.items()))
            proof.witness = tuple(sorted(set(alloc_event.values())))
    proof.phases = sorted(phase_marks.values(), key=lambda p: p.at_event)

    if usable_bytes is not None and proof.peak_bytes > usable_bytes:
        r = rule("device-over-capacity")
        top = ", ".join(
            f"{name}={bytes_to_human(nbytes)}"
            for name, nbytes in sorted(
                proof.resident_at_peak, key=lambda kv: -kv[1]
            )[:4]
        )
        proof.diagnostics.append(Diagnostic(
            pass_name=PASS_NAME,
            rule=r.static_rule,
            severity=r.severity,
            message=r.format(
                peak=proof.peak_bytes, detail=f"live: {top}",
                usable=usable_bytes, device=device or "device",
                idx=proof.peak_event,
            ),
            event_index=proof.peak_event,
            witness=proof.witness,
        ))
    return proof


def checkpoint_spike(
    proof: CapacityProof,
    state_bytes: int,
    nt: int,
    snap_period: int,
    budget: int | None = None,
) -> Diagnostic | None:
    """``DF211``: does the backward phase survive a checkpoint restore?

    Restoring a stored forward state stages one full wavefield
    (``state_bytes``) on top of the backward phase's proven residency; a
    plan that stores fewer states than it needs restores more often, so
    the spike is checked whenever the plan stores at least one state.
    Returns the warning diagnostic (also appended to the proof) or None.
    """
    from repro.core.checkpointing import plan_checkpoints

    if proof.usable_bytes is None:
        return None
    plan = plan_checkpoints(nt, snap_period, budget or max(1, nt // snap_period))
    if plan.stored == 0:
        return None
    base = proof.phase_peak("backward") or proof.peak_bytes
    spike = _aligned(state_bytes)
    total = base + spike
    if base <= proof.usable_bytes < total:
        r = rule("checkpoint-spike")
        diag = Diagnostic(
            pass_name=PASS_NAME,
            rule=r.static_rule,
            severity=r.severity,
            message=r.format(
                spike=spike, base=base,
                detail=(
                    f"{plan.stored}/{plan.nsnaps} states stored, "
                    f"recompute factor {plan.recompute_factor:.2f}"
                ),
                total=total, usable=proof.usable_bytes,
                device=proof.device or "device",
            ),
            event_index=proof.peak_event if proof.peak_event >= 0 else None,
            witness=proof.witness,
        )
        proof.diagnostics.append(diag)
        return diag
    return None


# ----------------------------------------------------------------------
# register-pressure / occupancy bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterBound:
    """Proven launch bounds for one (possibly fused) kernel body."""

    kernel: str
    parts: tuple[str, ...]
    effective_maxregcount: int | None
    occupancy: float
    spilled_regs: int
    seconds: float

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "parts": list(self.parts),
            "effective_maxregcount": self.effective_maxregcount,
            "occupancy": self.occupancy,
            "spilled_regs": self.spilled_regs,
            "seconds": self.seconds,
        }


def register_bound(
    spec: GPUSpec,
    workloads: list,
    maxregcount: int | None = None,
    threads_per_block: int = 128,
    toolkit: CudaToolkit = CUDA_5_0,
) -> RegisterBound:
    """Occupancy/spill bound of launching ``workloads`` as one body.

    For two or more workloads the body is the merged fusion
    (:func:`~repro.optim.tuning.fused_launch_estimate` — summed address
    streams, so fusion can spill where the parts did not); a single
    workload is priced directly. The compiler attaches this to every
    applied fusion's record.
    """
    from repro.gpusim.kernelmodel import LaunchConfig, estimate_kernel_time
    from repro.optim.tuning import fused_launch_estimate

    if len(workloads) >= 2:
        est = fused_launch_estimate(
            spec, workloads, maxregcount=maxregcount,
            threads_per_block=threads_per_block, toolkit=toolkit,
        )
        return RegisterBound(
            kernel="+".join(w.name for w in workloads),
            parts=tuple(w.name for w in workloads),
            effective_maxregcount=est.effective_maxregcount,
            occupancy=est.fused.occupancy,
            spilled_regs=est.fused.spilled_regs,
            seconds=est.fused_seconds,
        )
    w = workloads[0]
    reg_eff = (
        min(maxregcount, spec.max_regs_per_thread)
        if maxregcount is not None else None
    )
    est = estimate_kernel_time(
        spec, w,
        LaunchConfig(threads_per_block=threads_per_block, maxregcount=reg_eff),
        toolkit,
    )
    return RegisterBound(
        kernel=w.name, parts=(w.name,),
        effective_maxregcount=reg_eff,
        occupancy=est.occupancy, spilled_regs=est.spilled_regs,
        seconds=est.seconds,
    )


def admissible_maxregcounts(
    spec: GPUSpec,
    workloads: list,
    candidates: tuple[int | None, ...] = (64, None),
    toolkit: CudaToolkit = CUDA_5_0,
    threads_per_block: int = 128,
) -> tuple[int | None, ...]:
    """Prune a ``maxregcount`` search space by proof, never by guess.

    A clamped candidate is dropped only when the model *proves* it both
    spills and is no faster than a surviving candidate — the bound the
    autotuner's search consults so it never probes a schedule the static
    model already refutes. At least one candidate always survives.
    """
    from repro.optim.tuning import register_sweep

    finite = [c for c in candidates if c is not None]
    if not finite or not workloads:
        return tuple(candidates)
    points = {
        p.maxregcount: p
        for p in register_sweep(
            spec, list(workloads), tuple(finite), toolkit, threads_per_block
        )
    }
    best_clean = min(
        (p.seconds for p in points.values() if p.spilled_regs == 0),
        default=None,
    )
    kept: list[int | None] = []
    for cand in candidates:
        p = points.get(cand) if cand is not None else None
        if (
            p is not None and best_clean is not None
            and p.spilled_regs > 0 and p.seconds >= best_clean
        ):
            continue
        kept.append(cand)
    return tuple(kept) if kept else tuple(candidates)


__all__ = [
    "PASS_NAME",
    "PhaseResidency",
    "CapacityProof",
    "prove_capacity",
    "checkpoint_spike",
    "RegisterBound",
    "register_bound",
    "admissible_maxregcounts",
]
