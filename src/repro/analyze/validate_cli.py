"""Driver behind ``python -m repro validate``.

One command, two static provers over a case's recorded schedule:

* the **capacity prover** (:mod:`repro.analyze.capacity`) walks the
  recording's lifetime events under the allocator's alignment and proves
  the per-phase device high-water marks — refusing a would-OOM run
  (``DF210``) or flagging a checkpoint-restore spike (``DF211``) before
  any allocation happens;
* the **translation validator** (:mod:`repro.compile.validate`) compiles
  the case and re-proves, per recorded instance, that the lowered
  per-phase steps simulate the recorded program (``DF201``-``DF204``) —
  the same gate :func:`~repro.compile.compiler.compile_case` runs before
  the bitwise replay backstop.

Findings from both provers merge into one
:class:`~repro.analyze.framework.LintResult` per target and render
through the shared reporters (text, ``--format json``, ``--format
sarif`` for CI code-scanning uploads). ``--artifact FILE`` writes the
machine-readable proof document (capacity phases + discharged
obligations) that CI round-trips.

Exit status: 0 when every target is proven clean at the gate severity,
1 on findings at/above ``--fail-on`` (default ``error``) or a
compilation failure, 2 on a stale artifact or malformed target.

``check_validate`` is the pipeline's opt-in strict mode
(``GPUOptions.strict_validate``): prove capacity for the exact
configuration about to run and raise
:class:`~repro.utils.errors.AnalysisError` on a proven OOM before the
real run allocates anything.
"""

from __future__ import annotations

import json
import sys

from repro.analyze.framework import LintResult, Severity, parse_severity
from repro.utils.errors import AnalysisError

__all__ = ["run_validate_command", "validate_request", "check_validate"]


def _phase_of(recording):
    """Map an event index to its recorded phase name."""
    def phase_of(idx: int) -> str:
        seg = recording.segment_of(idx)
        return seg.phase if seg is not None else "program"

    return phase_of


def validate_request(request, options=None, platform=None, artifact=None,
                     plan=None) -> dict:
    """Run both provers for one :class:`CompileRequest`.

    Returns ``{"result": LintResult, "proof": CapacityProof,
    "compiled": CompiledPipeline | None, "error": str | None}`` — the
    compiled pipeline is None when compilation itself failed (its
    refusal message lands in ``error`` and counts as a finding).
    """
    from repro.analyze.capacity import checkpoint_spike, prove_capacity
    from repro.compile.compiler import (
        _default_runtime_factory,
        compile_case,
        record_segments,
    )
    from repro.core.config import GPUOptions

    opts = options if options is not None else GPUOptions()
    recording = record_segments(
        request, opts, _default_runtime_factory(opts, platform)
    )
    device = recording.pipeline.rt.device
    proof = prove_capacity(
        recording.program,
        usable_bytes=device.memory.usable_bytes,
        device=device.spec.name,
        phase_of=_phase_of(recording),
    )
    if request.mode == "rtm":
        checkpoint_spike(
            proof,
            state_bytes=recording.program.extents.get(
                recording.pipeline.primary, 0
            ),
            nt=request.nt,
            snap_period=request.snap_period,
        )
    diagnostics = list(proof.diagnostics)
    compiled = None
    error = None
    try:
        compiled = compile_case(
            request, options=options, platform=platform, plan=plan,
            artifact=artifact,
        )
    except Exception as exc:
        # StaleArtifactError propagates (exit 2); a CompileError here
        # means the validator or the replay gate refused the lowering
        from repro.utils.errors import StaleArtifactError

        if isinstance(exc, StaleArtifactError):
            raise
        error = str(exc)
    if compiled is not None and compiled.validation is not None:
        diagnostics.extend(compiled.validation.diagnostics)
    return {
        "result": LintResult(recording.program, diagnostics),
        "proof": proof,
        "compiled": compiled,
        "error": error,
    }


def _target_doc(label: str, request, outcome: dict) -> dict:
    compiled = outcome["compiled"]
    doc = {
        "case": label,
        "name": request.name,
        "capacity": outcome["proof"].to_dict(),
    }
    if compiled is not None:
        doc["program_sha"] = compiled.program_sha
        doc["translation"] = (
            compiled.validation.to_dict()
            if compiled.validation is not None else None
        )
        doc["verified"] = compiled.verified
        doc["applied_cross_phase"] = sum(
            1 for a in compiled.applied if "->" in a.phase
        )
    if outcome["error"] is not None:
        doc["compile_error"] = outcome["error"]
    doc["ok"] = outcome["error"] is None and not outcome["result"].fails(
        Severity.ERROR
    )
    return doc


def _print_target(label: str, outcome: dict) -> None:
    from repro.analyze.report import format_text
    from repro.utils.units import bytes_to_human

    print(format_text(outcome["result"], title=f"repro validate — {label}"))
    proof = outcome["proof"]
    fits = "fits" if proof.fits else "DOES NOT FIT"
    print(
        f"  capacity: peak {bytes_to_human(proof.peak_bytes)} of "
        f"{bytes_to_human(proof.usable_bytes or 0)} usable on "
        f"{proof.device} ({fits})"
    )
    compiled = outcome["compiled"]
    if compiled is not None and compiled.validation is not None:
        v = compiled.validation
        cross = sum(1 for a in compiled.applied if "->" in a.phase)
        print(
            f"  translation: {v.obligations} obligations discharged, "
            f"{'ok' if v.ok else 'REFUSED'}; "
            f"{cross} cross-phase fusion(s) admitted"
        )
    if outcome["error"] is not None:
        print(f"  compile: FAILED — {outcome['error']}")
    print()


def run_validate_command(args) -> int:
    """``python -m repro validate`` entry point (argparse namespace in)."""
    from repro.compile.cli import compile_targets
    from repro.observe.ledger import append_run, ledger_path_from_args
    from repro.observe.runlog import RunLog
    from repro.utils.errors import StaleArtifactError

    artifact = None
    if getattr(args, "opportunities", None):
        with open(args.opportunities, encoding="utf-8") as fh:
            artifact = json.load(fh)
    try:
        targets = compile_targets(args)
    except Exception as exc:  # bad case spelling
        print(f"validate: {exc}")
        return 2
    fail_on = parse_severity(getattr(args, "fail_on", None) or "error")
    ledger_path = ledger_path_from_args(args)
    fmt = getattr(args, "format", "text")
    outcomes: list[tuple[str, object, dict]] = []
    failures = 0
    for label, request in targets:
        runlog = RunLog(
            command="validate", case=label, mode=request.mode, nt=request.nt
        )
        with runlog.activate():
            try:
                outcome = validate_request(request, artifact=artifact)
            except StaleArtifactError as exc:
                print(f"validate {label}: STALE ARTIFACT\n  {exc}")
                return 2
            result = outcome["result"]
            proof = outcome["proof"]
            compiled = outcome["compiled"]
            metrics = {
                "validate_errors": float(result.count(Severity.ERROR)),
                "validate_warnings": float(result.count(Severity.WARNING)),
                "peak_bytes": float(proof.peak_bytes),
                "usable_bytes": float(proof.usable_bytes or 0),
            }
            if compiled is not None and compiled.validation is not None:
                metrics["obligations"] = float(compiled.validation.obligations)
                metrics["admitted_cross_phase"] = float(
                    sum(1 for a in compiled.applied if "->" in a.phase)
                )
            append_run(ledger_path, runlog, metrics)
        if outcome["error"] is not None or result.fails(fail_on):
            failures += 1
        outcomes.append((label, request, outcome))
    if getattr(args, "artifact", None):
        doc = {
            "targets": [
                _target_doc(label, request, outcome)
                for label, request, outcome in outcomes
            ],
        }
        with open(args.artifact, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        # stderr: --format json/sarif keep stdout machine-parseable
        print(f"wrote {args.artifact}", file=sys.stderr)
    if fmt == "json":
        from repro.analyze.report import format_json

        print(format_json([o["result"] for _, _, o in outcomes]))
    elif fmt == "sarif":
        from repro.analyze.report import format_sarif

        print(format_sarif(
            [o["result"] for _, _, o in outcomes],
            tool_name="repro-validate",
        ))
    else:
        for label, _, outcome in outcomes:
            _print_target(label, outcome)
    return 1 if failures else 0


def check_validate(
    physics: str,
    shape: tuple[int, ...],
    mode: str,
    options,
    platform,
    nt: int,
    snap_period: int,
    space_order: int = 8,
    boundary_width: int = 8,
    pml_variant: str = "restructured",
    fail_on: Severity = Severity.ERROR,
):
    """Strict-mode gate (``GPUOptions.strict_validate``): prove the
    configuration's device capacity for the *full* run length and raise
    :class:`AnalysisError` on findings at/above ``fail_on`` — the
    would-OOM refusal happens here, before anything is allocated."""
    from dataclasses import replace

    from repro.analyze.capacity import checkpoint_spike, prove_capacity
    from repro.analyze.drivers import record_pipeline_program
    from repro.core.inventory import primary_wavefield
    from repro.gpusim.memory import DeviceMemory

    # record the schedule on an unconstrained twin of the card — the
    # interpreted dry run would itself OOM on an over-subscribed card,
    # and the whole point is to refuse *before* any allocation
    recording_platform = replace(
        platform,
        gpu=replace(platform.gpu, memory_bytes=max(
            platform.gpu.memory_bytes, 1 << 40
        )),
    )
    program = record_pipeline_program(
        physics,
        tuple(shape),
        mode,
        nt=min(nt, 16),
        snap_period=snap_period,
        options=options,
        platform=recording_platform,
        space_order=space_order,
        boundary_width=boundary_width,
        pml_variant=pml_variant,
        name=f"{physics}-{len(shape)}d-{mode} (validate dry run)",
    )
    memory = DeviceMemory(platform.gpu.memory_bytes)
    proof = prove_capacity(
        program,
        usable_bytes=memory.usable_bytes,
        device=platform.gpu.name,
    )
    if mode == "rtm":
        checkpoint_spike(
            proof,
            state_bytes=program.extents.get(primary_wavefield(physics), 0),
            nt=nt,
            snap_period=snap_period,
        )
    worst = [d for d in proof.diagnostics if d.severity >= fail_on]
    if worst:
        head = "; ".join(f"{d.rule}: {d.message}" for d in worst[:3])
        more = f" (+{len(worst) - 3} more)" if len(worst) > 3 else ""
        raise AnalysisError(
            f"strict validate refused the {physics}-{len(shape)}d {mode} "
            f"run: {len(worst)} finding(s) at or above {str(fail_on)} — "
            f"{head}{more}"
        )
    return proof
