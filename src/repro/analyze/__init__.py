"""Static analyzer & lint passes for OpenACC directive programs.

Every bug class the paper fights by hand — data re-transferred each step
instead of staying resident (S5.1), full-array updates where partial
ghost-node extents suffice, ``independent`` asserted on loops with carried
writes, async queues racing on shared wavefields (S6), ``kernels``
vectorizing a non-contiguous loop under CRAY (Figs 8-9) — is statically
detectable from the directive sequence plus the kernels' read/write sets.
This package detects them *before* a run:

* :mod:`~repro.analyze.program` — the DirectiveProgram IR, an ordered
  event sequence with per-kernel read/write sets and async-queue ids;
* :mod:`~repro.analyze.recorder` — the Runtime recording hook, so real
  pipeline runs emit their own programs;
* :mod:`~repro.analyze.frontend` — build programs from ``!$acc`` scripts
  via :mod:`repro.acc.parser` (with ``!$lint`` sidecar annotations);
* four passes — :mod:`~repro.analyze.present_lifetime`,
  :mod:`~repro.analyze.async_race`, :mod:`~repro.analyze.schedule_lint`,
  :mod:`~repro.analyze.transfer` — over the shared
  :mod:`~repro.analyze.framework` (severity-ranked diagnostics);
* :mod:`~repro.analyze.rules` — the shared bug-class registry: each
  coherence rule carries its dynamic (sanitizer) pass, its static
  ``DF*`` id, one message template, and a docs anchor;
* :mod:`~repro.analyze.dataflow` — the whole-program dataflow engine:
  dependence graph, fixed-point coherence interpreter (``lint --deep``),
  cross-rank deadlock detection, and verified fusion/hoisting
  opportunities (``python -m repro deps``);
* :mod:`~repro.analyze.cli` — ``python -m repro lint`` with text/JSON
  reporters and ``--fail-on`` gating;
* :mod:`~repro.analyze.drivers` — record-and-lint helpers plus the
  pipeline's opt-in strict mode (``GPUOptions.strict_lint``, which now
  runs the dataflow engine's proofs before the real run starts).
"""

from repro.analyze.async_race import AsyncRacePass
from repro.analyze.dataflow import (
    DataflowCoherencePass,
    DependenceGraph,
    OptimizationOpportunity,
    check_ranks,
    find_opportunities,
    interpret_program,
)
from repro.analyze.drivers import (
    check_schedule,
    lint_pipeline,
    record_pipeline_program,
)
from repro.analyze.framework import (
    Diagnostic,
    LintPass,
    LintResult,
    Severity,
    deep_passes,
    default_passes,
    lint_program,
    parse_severity,
    run_passes,
)
from repro.analyze.rules import REGISTRY, rule
from repro.analyze.frontend import program_from_script
from repro.analyze.present_lifetime import PresentLifetimePass
from repro.analyze.program import AccEvent, DirectiveProgram, ProgramMeta
from repro.analyze.recorder import ProgramRecorder
from repro.analyze.report import format_json, format_text, to_json_dict
from repro.analyze.schedule_lint import ScheduleLintPass
from repro.analyze.transfer import TransferEfficiencyPass

__all__ = [
    "AccEvent",
    "DirectiveProgram",
    "ProgramMeta",
    "ProgramRecorder",
    "program_from_script",
    "Diagnostic",
    "Severity",
    "parse_severity",
    "LintPass",
    "LintResult",
    "default_passes",
    "deep_passes",
    "run_passes",
    "lint_program",
    "REGISTRY",
    "rule",
    "DataflowCoherencePass",
    "DependenceGraph",
    "OptimizationOpportunity",
    "check_ranks",
    "find_opportunities",
    "interpret_program",
    "PresentLifetimePass",
    "AsyncRacePass",
    "ScheduleLintPass",
    "TransferEfficiencyPass",
    "format_text",
    "format_json",
    "to_json_dict",
    "record_pipeline_program",
    "lint_pipeline",
    "check_schedule",
]
