"""Lint reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
import re

from repro.analyze.framework import LintResult, Severity


def format_text(result: LintResult, title: str | None = None) -> str:
    """One lint run as an aligned text report."""
    program = result.program
    meta = program.meta
    lines: list[str] = []
    head = title if title is not None else f"repro lint — {meta.name}"
    context = ", ".join(
        part for part in (
            meta.source,
            meta.compiler,
            meta.device and f"on {meta.device}",
        ) if part
    )
    lines.append(f"{head} [{context}]" if context else head)
    counts = program.summary()
    lines.append(
        "  program: "
        + ", ".join(f"{counts.get(k, 0)} {k}" for k in
                    ("enter", "exit", "update", "compute", "wait"))
    )
    for d in result.diagnostics:
        subject = d.kernel or d.var or "-"
        lines.append(
            f"  {str(d.severity):<7} {d.pass_name:<19} {d.rule:<28} "
            f"{subject:<16} {d.message}  [{d.location(program)}]"
        )
    if not result.diagnostics:
        lines.append("  clean: no findings")
    lines.append(
        "  "
        + ", ".join(
            f"{result.count(s)} {str(s)}{'s' if result.count(s) != 1 else ''}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        )
    )
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> dict:
    """One lint run as a JSON-serialisable dict."""
    meta = result.program.meta
    return {
        "name": meta.name,
        "source": meta.source,
        "device": meta.device,
        "compiler": meta.compiler,
        "events": len(result.program),
        "event_counts": result.program.summary(),
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "counts": {
            str(s): result.count(s)
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        },
        "worst": str(result.worst()) if result.worst() is not None else None,
    }


def format_json(results: list[LintResult]) -> str:
    return json.dumps([to_json_dict(r) for r in results], indent=2)


_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}
_LINE_RE = re.compile(r"line (\d+)")


def _sarif_location(result: LintResult, d) -> dict:
    """Physical location (script line) when the event label carries one,
    logical location (event index) otherwise."""
    program = result.program
    label = None
    if d.event_index is not None and 0 <= d.event_index < len(program.events):
        label = program.events[d.event_index].label
    m = _LINE_RE.search(label or "")
    if m and program.meta.source == "script":
        return {
            "physicalLocation": {
                "artifactLocation": {"uri": program.meta.name},
                "region": {"startLine": int(m.group(1))},
            }
        }
    return {
        "logicalLocations": [
            {"fullyQualifiedName": f"{program.meta.name}: {d.location(program)}"}
        ]
    }


def format_sarif(results: list[LintResult], tool_name: str = "repro-lint") -> str:
    """All findings as one SARIF 2.1.0 run — the format CI code-scanning
    uploads consume (``--format=sarif``)."""
    rules: dict[str, dict] = {}
    sarif_results: list[dict] = []
    for result in results:
        for d in result.diagnostics:
            rule_id = f"{d.pass_name}/{d.rule}"
            rules.setdefault(rule_id, {
                "id": rule_id,
                "name": d.rule,
                "defaultConfiguration": {"level": _SARIF_LEVELS[d.severity]},
            })
            entry = {
                "ruleId": rule_id,
                "level": _SARIF_LEVELS[d.severity],
                "message": {"text": d.message},
                "locations": [_sarif_location(result, d)],
            }
            if d.fix is not None:
                entry["message"]["text"] += f" [fix: {d.fix}]"
            sarif_results.append(entry)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri": "https://example.invalid/repro",
                "rules": sorted(rules.values(), key=lambda r: r["id"]),
            }},
            "results": sarif_results,
        }],
    }
    return json.dumps(doc, indent=2)


__all__ = ["format_text", "format_json", "format_sarif", "to_json_dict"]
