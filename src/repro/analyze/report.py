"""Lint reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analyze.framework import LintResult, Severity


def format_text(result: LintResult, title: str | None = None) -> str:
    """One lint run as an aligned text report."""
    program = result.program
    meta = program.meta
    lines: list[str] = []
    head = title if title is not None else f"repro lint — {meta.name}"
    context = ", ".join(
        part for part in (
            meta.source,
            meta.compiler,
            meta.device and f"on {meta.device}",
        ) if part
    )
    lines.append(f"{head} [{context}]" if context else head)
    counts = program.summary()
    lines.append(
        "  program: "
        + ", ".join(f"{counts.get(k, 0)} {k}" for k in
                    ("enter", "exit", "update", "compute", "wait"))
    )
    for d in result.diagnostics:
        subject = d.kernel or d.var or "-"
        lines.append(
            f"  {str(d.severity):<7} {d.pass_name:<19} {d.rule:<28} "
            f"{subject:<16} {d.message}  [{d.location(program)}]"
        )
    if not result.diagnostics:
        lines.append("  clean: no findings")
    lines.append(
        "  "
        + ", ".join(
            f"{result.count(s)} {str(s)}{'s' if result.count(s) != 1 else ''}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        )
    )
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> dict:
    """One lint run as a JSON-serialisable dict."""
    meta = result.program.meta
    return {
        "name": meta.name,
        "source": meta.source,
        "device": meta.device,
        "compiler": meta.compiler,
        "events": len(result.program),
        "event_counts": result.program.summary(),
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "counts": {
            str(s): result.count(s)
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        },
        "worst": str(result.worst()) if result.worst() is not None else None,
    }


def format_json(results: list[LintResult]) -> str:
    return json.dumps([to_json_dict(r) for r in results], indent=2)


__all__ = ["format_text", "format_json", "to_json_dict"]
