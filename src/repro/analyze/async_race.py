"""Async-queue race pass.

Builds a happens-before relation over the event sequence and flags
conflicting, unordered accesses to the same device array — the paper's
Section 6 hazard of async queues racing on shared wavefields.

Ordering model (vector clocks, one component per queue plus the host):

* the host issues every directive in program order; a synchronous event
  (``queue is None``) joins the host timeline;
* an async event is ordered after earlier work on *its own* queue and
  after everything the host had observed when it was enqueued — but not
  after pending work on other queues;
* ``wait`` (all queues) and ``wait(q)`` join the named queues back into
  the host timeline; a ``wait(...)`` *clause* on a compute construct adds
  the same edges to that one launch, and a *bare* ``wait`` clause
  (``AccEvent.wait_all``) joins every queue into the launch — it is a
  full barrier for that construct, not a no-op.

Conflicts: write-write races are errors; read-write races are warnings
(kernels and copies both count — an ``update`` is a device-side read or
write like any kernel).

For recorded pipeline programs most events are synchronous and every step
ends in a full ``wait``; accesses separated by a full wait are ordered by
construction, so the pairwise check only runs within wait-delimited
segments.
"""

from __future__ import annotations

from repro.analyze.framework import Diagnostic, LintPass, Severity
from repro.analyze.program import DirectiveProgram

_HOST = "host"


class AsyncRacePass(LintPass):
    name = "async-race"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:
        host: dict = {_HOST: 0}
        queues: dict[int, dict] = {}
        #: per access: (event_index, owner_key, own_tick, clock, var, mode,
        #: kernel, segment)
        accesses: list[tuple] = []
        segment = 0

        def merge(dst: dict, src: dict) -> None:
            for k, v in src.items():
                if dst.get(k, 0) < v:
                    dst[k] = v

        for e in program.events:
            if e.kind == "wait":
                if e.wait_on:
                    for q in e.wait_on:
                        merge(host, queues.get(q, {}))
                else:
                    for qc in queues.values():
                        merge(host, qc)
                    segment += 1  # full barrier: later accesses cannot race
                host[_HOST] += 1
                continue
            if e.kind in ("host_write", "host_read", "send", "recv"):
                host[_HOST] += 1
                continue
            if e.wait_all:
                # bare 'wait' clause: the launch (and, in this host-wait
                # model, the host itself) joins every queue
                for qc in queues.values():
                    merge(host, qc)
            if e.queue is None:
                owner: int | str = _HOST
                host[_HOST] += 1
                clock = dict(host)
                tick = host[_HOST]
            else:
                owner = e.queue
                qc = queues.setdefault(owner, {owner: 0})
                clock = dict(host)
                merge(clock, qc)
                for q in e.wait_on:
                    merge(clock, queues.get(q, {}))
                clock[owner] = qc.get(owner, 0) + 1
                queues[owner] = clock
                tick = clock[owner]
            for var, mode in e.accesses():
                accesses.append(
                    (e.index, owner, tick, clock, var, mode, e.kernel, segment)
                )

        return self._find_races(program, accesses)

    # ------------------------------------------------------------------
    def _find_races(self, program, accesses) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        reported: set[tuple] = set()
        by_var: dict[str, list[tuple]] = {}
        for acc in accesses:
            by_var.setdefault(acc[4], []).append(acc)
        for var, accs in by_var.items():
            if all(a[1] == _HOST for a in accs):
                continue  # host-serial: fully ordered by program order
            for j in range(len(accs)):
                for i in range(j):
                    a, b = accs[i], accs[j]
                    if a[7] != b[7]:
                        continue  # a full wait separates them
                    if a[5] == "r" and b[5] == "r":
                        continue
                    if self._ordered(a, b) or self._ordered(b, a):
                        continue
                    kind = "ww-race" if (a[5] == "w" and b[5] == "w") else "rw-race"
                    key = (var, a[1], b[1], kind)
                    if key in reported:
                        continue
                    reported.add(key)
                    sev = Severity.ERROR if kind == "ww-race" else Severity.WARNING
                    what = (
                        "two unordered writes"
                        if kind == "ww-race"
                        else "an unordered read and write"
                    )
                    out.append(self.diag(
                        kind, sev,
                        f"{what} to '{var}' across queues "
                        f"{self._qname(a[1])} and {self._qname(b[1])} "
                        f"(events {a[0]} and {b[0]}) — add a wait or a "
                        "wait(...) clause to order them",
                        b[0], var=var, kernel=b[6] or a[6],
                    ))
        return out

    @staticmethod
    def _ordered(a, b) -> bool:
        """Whether access ``a`` happens-before ``b``: b's clock has seen
        a's tick on a's own timeline."""
        return b[3].get(a[1], 0) >= a[2]

    @staticmethod
    def _qname(owner) -> str:
        return "host" if owner == _HOST else f"async({owner})"


__all__ = ["AsyncRacePass"]
