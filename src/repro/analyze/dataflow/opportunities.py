"""OptimizationOpportunity records: fusion / hoisting / cancellation facts.

The contract between the dataflow engine, the fused-kernel compiler
(:mod:`repro.compile`, which re-verifies and then *executes* these
records) and :mod:`repro.optim.transformations`: every record names the events
involved, the legality proof, and — decisively — carries a
machine-checked verification: :func:`apply_opportunity` produces the
transformed event schedule and :func:`verify_opportunity` replays both
schedules through the sanitizer's shadow state, requiring the final
per-array dirty intervals and the diagnostic set to be *identical*. An
opportunity that fails replay is reported with ``verified: false`` and
must not be applied.

Three kinds:

``fuse-computes``
    two adjacent compute launches (no compute between, same queue) with
    no intervening dependence into the second — one launch instead of
    two; the proof is the empty ``dependences_between`` query.
``hoist-update``
    an ``update`` inside the detected time loop whose array no other
    body event touches on either side — the transfer is loop-invariant
    and moves above the loop, saving ``(reps - 1)`` transfers.
``cancel-update-pair``
    an ``update host`` / ``update device`` pair over one array where the
    steady-state fixpoint proves both transfers clear zero dirty bytes
    and nothing touches the array between them — both are dead traffic.

The JSON serialization is schema-versioned (:data:`OPPORTUNITY_SCHEMA`)
and validated by :func:`validate_opportunities` (a dependency-free
draft-07 subset checker) — CI asserts the emitted artifact validates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analyze.dataflow.absint import CoherenceSummary, interpret_program
from repro.analyze.dataflow.graph import DependenceGraph, LoopRegion
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.sanitize.shadow import normalize

#: schema version of the opportunities artifact
OPPORTUNITY_SCHEMA_VERSION = 1

#: maximum event gap between two computes still considered "adjacent"
_FUSE_GAP = 8

KINDS = ("fuse-computes", "hoist-update", "cancel-update-pair")


@dataclass
class OptimizationOpportunity:
    """One legal (candidate) schedule transformation."""

    kind: str
    #: anchor events in the original program (fuse: the two computes;
    #: hoist/cancel: the update event(s))
    events: tuple[int, ...]
    var: str | None = None
    kernels: tuple[str, ...] = ()
    queue: int | None = None
    #: human-readable legality argument
    proof: str = ""
    #: estimated steady-state savings (launches and/or bytes)
    savings: dict[str, float] = field(default_factory=dict)
    #: events the transform deletes (includes periodic repeats)
    remove_events: tuple[int, ...] = ()
    #: hoist: program position the kept update moves to
    insert_at: int | None = None
    #: replay check passed: transformed schedule is state- and
    #: diagnostic-identical to the original
    verified: bool = False

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "events": list(self.events),
            "var": self.var,
            "kernels": list(self.kernels),
            "queue": self.queue,
            "proof": self.proof,
            "savings": dict(self.savings),
            "remove_events": list(self.remove_events),
            "insert_at": self.insert_at,
            "verified": self.verified,
        }


@dataclass
class OpportunityReport:
    """All opportunities found in one program."""

    name: str
    case: str | None = None
    mode: str | None = None
    #: :meth:`DirectiveProgram.sha` of the program the opportunities were
    #: proven on — consumers (``repro compile``) refuse artifacts whose
    #: hash no longer matches the re-recorded program (fail closed).
    program_sha: str | None = None
    opportunities: list[OptimizationOpportunity] = field(default_factory=list)

    def verified(self) -> list[OptimizationOpportunity]:
        return [o for o in self.opportunities if o.verified]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "case": self.case,
            "mode": self.mode,
            "program_sha": self.program_sha,
            "opportunities": [o.to_json() for o in self.opportunities],
        }


def reports_to_json(reports: list[OpportunityReport]) -> dict:
    """The schema-versioned ``--opportunities`` artifact document.

    One entry per recorded program; each entry carries the program's
    content hash (``program_sha``), which :mod:`repro.compile` compares
    against its own re-recording before trusting any proof.
    """
    return {
        "schema": OPPORTUNITY_SCHEMA_VERSION,
        "programs": [r.to_json() for r in reports],
    }


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
def _involved(e: AccEvent) -> set[str]:
    """Every array an event touches, on either side of the bus."""
    names = {n for n, _ in e.accesses(conservative=True)}
    names.update(e.writes)
    names.update(e.reads)
    if e.var is not None:
        names.add(e.var)
    names.update(e.copyin + e.create + e.delete + e.copyout)
    names.discard(None)  # type: ignore[arg-type]
    return names


def _canonical_mask(n: int, regions: list[LoopRegion]) -> list[bool]:
    """True for events outside any loop or in a loop's *first* iteration —
    the one copy of each periodic event opportunities anchor to."""
    mask = [True] * n
    for r in regions:
        for i in range(r.start + r.period, r.stop):
            mask[i] = False
    return mask


def _region_of(regions: list[LoopRegion], idx: int) -> LoopRegion | None:
    for r in regions:
        if r.start <= idx < r.stop:
            return r
    return None


def _repeats(region: LoopRegion | None, idx: int) -> tuple[int, ...]:
    """``idx`` and its periodic copies across the region's iterations."""
    if region is None:
        return (idx,)
    body_pos = (idx - region.start) % region.period
    return tuple(
        region.start + body_pos + k * region.period
        for k in range(region.reps)
    )


def find_opportunities(
    program: DirectiveProgram,
    graph: DependenceGraph | None = None,
    summary: CoherenceSummary | None = None,
    verify: bool = True,
) -> OpportunityReport:
    """Scan one program for fusion / hoist / cancellation opportunities,
    replay-verifying each candidate unless ``verify`` is False."""
    graph = graph if graph is not None else DependenceGraph.from_program(program)
    summary = summary if summary is not None else interpret_program(program)
    regions = summary.regions
    events = program.events
    mask = _canonical_mask(len(events), regions)
    report = OpportunityReport(name=program.meta.name)

    report.opportunities.extend(_find_fusions(program, graph, regions, mask))
    report.opportunities.extend(_find_hoists(program, regions))
    report.opportunities.extend(_find_cancels(program, summary, regions, mask))
    if verify and report.opportunities:
        baseline = replay_fingerprint(program)
        for opp in report.opportunities:
            opp.verified = verify_opportunity(program, opp, baseline)
    return report


def _find_fusions(program, graph, regions, mask):
    out = []
    computes = program.computes()
    for a, b in zip(computes, computes[1:]):
        if not (mask[a.index] and mask[b.index]):
            continue
        if b.index - a.index > _FUSE_GAP:
            continue
        if a.queue != b.queue:
            continue
        between = program.events[a.index + 1:b.index]
        # a wait between the pair is a cross-queue barrier: hoisting b
        # above it could unorder b against other queues' in-flight work,
        # which shadow replay cannot observe
        if any(x.kind == "wait" for x in between):
            continue
        blockers = graph.dependences_between(a.index, b.index)
        if blockers:
            continue
        region = _region_of(regions, a.index)
        reps = region.reps if (
            region is not None and _region_of(regions, b.index) is region
        ) else 1
        gap = b.index - a.index - 1
        out.append(OptimizationOpportunity(
            kind="fuse-computes",
            events=(a.index, b.index),
            kernels=tuple(k for k in (a.kernel, b.kernel) if k),
            queue=a.queue,
            proof=(
                f"computes {a.index} and {b.index} share queue "
                f"{'sync' if a.queue is None else a.queue} with "
                f"{gap} event(s) between and no dependence edge from any "
                f"of them into {b.index}"
            ),
            savings={"launches": float(reps)},
            remove_events=(b.index,),
        ))
    return out


def _find_hoists(program, regions):
    out = []
    events = program.events
    for region in regions:
        body = list(region.body())
        for idx in body:
            e = events[idx]
            if e.kind != "update" or e.var is None:
                continue
            touched = False
            for other in body:
                if other == idx:
                    continue
                if e.var in _involved(events[other]):
                    touched = True
                    break
            if touched:
                continue
            nbytes = e.nbytes if e.nbytes is not None else (
                program.extents.get(e.var, 0)
            )
            out.append(OptimizationOpportunity(
                kind="hoist-update",
                events=(idx,),
                var=e.var,
                queue=e.queue,
                proof=(
                    f"update {e.direction}({e.var}) at {idx} is "
                    f"loop-invariant: no other event in the {region.period}"
                    f"-event body touches '{e.var}' on either side"
                ),
                savings={
                    "transfers": float(region.reps - 1),
                    "bytes": float((nbytes or 0) * (region.reps - 1)),
                },
                remove_events=_repeats(region, idx),
                insert_at=region.start,
            ))
    return out


def _find_cancels(program, summary, regions, mask):
    out = []
    events = program.events
    dead = {
        idx for idx, f in summary.facts.items()
        if events[idx].kind == "update"
        and f.get("host_dirty_cleared", 0) == 0
        and f.get("dev_dirty_cleared", 0) == 0
    }
    by_var: dict[str, list[int]] = {}
    for idx in sorted(dead):
        if mask[idx] and events[idx].var is not None:
            by_var.setdefault(events[idx].var, []).append(idx)
    for var, idxs in by_var.items():
        for i, j in zip(idxs, idxs[1:]):
            a, b = events[i], events[j]
            if {a.direction, b.direction} != {"host", "device"}:
                continue
            if any(
                var in _involved(events[k]) for k in range(i + 1, j)
            ):
                continue
            removed = (
                _repeats(_region_of(regions, i), i)
                + _repeats(_region_of(regions, j), j)
            )
            out.append(OptimizationOpportunity(
                kind="cancel-update-pair",
                events=(i, j),
                var=var,
                proof=(
                    f"fixpoint proves update {a.direction}({var}) at {i} "
                    f"and update {b.direction}({var}) at {j} each clear 0 "
                    f"dirty bytes in steady state, and no event between "
                    f"them touches '{var}'"
                ),
                savings={
                    "transfers": float(len(removed)),
                    "bytes": float(sum(
                        events[k].nbytes
                        or program.extents.get(var, 0) or 0
                        for k in removed
                    )),
                },
                remove_events=tuple(sorted(set(removed))),
            ))
    return out


# ----------------------------------------------------------------------
# transformation + replay verification
# ----------------------------------------------------------------------
def _merged_compute(a: AccEvent, b: AccEvent) -> AccEvent:
    kernel = "+".join(k for k in (a.kernel, b.kernel) if k) or a.kernel
    return replace(
        a,
        kernel=kernel,
        reads=tuple(dict.fromkeys(a.reads + b.reads)),
        writes=tuple(dict.fromkeys(a.writes + b.writes)),
        writes_known=a.writes_known and b.writes_known,
        wait_on=tuple(dict.fromkeys(a.wait_on + b.wait_on)),
        wait_all=a.wait_all or b.wait_all,
        regs_demand=max(
            (r for r in (a.regs_demand, b.regs_demand) if r is not None),
            default=None,
        ),
    )


def apply_opportunity(
    program: DirectiveProgram, opp: OptimizationOpportunity
) -> DirectiveProgram:
    """The transformed schedule: same program with the opportunity applied."""
    out = DirectiveProgram(program.meta)
    out.extents = dict(program.extents)
    removed = set(opp.remove_events)
    for e in program.events:
        if opp.kind == "hoist-update" and e.index == opp.insert_at:
            out.add(program.events[opp.events[0]])
        if opp.kind == "fuse-computes" and e.index == opp.events[0]:
            out.add(_merged_compute(e, program.events[opp.events[1]]))
            continue
        if e.index in removed:
            continue
        out.add(e)
    return out


def replay_fingerprint(program: DirectiveProgram) -> tuple:
    """Replay one schedule through the sanitizer's shadow machinery and
    fingerprint the outcome: final per-array dirty intervals (bitwise)
    plus the diagnostic set. Two programs with equal fingerprints leave
    host and device memory in the same bytewise state — the equivalence
    relation behind :func:`verify_opportunity` and the compiled-step
    verification gate in :mod:`repro.compile`."""
    from repro.sanitize.session import SanitizeSession

    session = SanitizeSession(nranks=1, name=program.meta.name)
    session.replay(program)
    shadows = tuple(sorted(
        (
            name,
            tuple(normalize(sh.host_dirty)),
            tuple(normalize(sh.dev_dirty)),
        )
        for name, sh in session.shadows[0].items()
    ))
    diags = tuple(sorted(
        (d.rule, d.var or "", d.kernel or "")
        for d in session.diagnostics
    ))
    return shadows, diags


def verify_opportunity(
    program: DirectiveProgram,
    opp: OptimizationOpportunity,
    baseline: tuple | None = None,
) -> bool:
    """Replay original vs transformed; True iff the final shadow state
    and diagnostics are identical (the bitwise-equivalence gate).
    ``baseline`` caches the original's fingerprint across candidates."""
    try:
        transformed = apply_opportunity(program, opp)
    except (IndexError, KeyError, ValueError):
        return False
    if baseline is None:
        baseline = replay_fingerprint(program)
    return baseline == replay_fingerprint(transformed)


# ----------------------------------------------------------------------
# JSON schema + dependency-free validation
# ----------------------------------------------------------------------
OPPORTUNITY_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro dataflow opportunities artifact",
    "type": "object",
    "required": ["schema", "programs"],
    "properties": {
        "schema": {"type": "integer", "enum": [OPPORTUNITY_SCHEMA_VERSION]},
        "programs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "opportunities"],
                "properties": {
                    "name": {"type": "string"},
                    "case": {"type": ["string", "null"]},
                    "mode": {"type": ["string", "null"]},
                    "program_sha": {"type": ["string", "null"]},
                    "opportunities": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "kind", "events", "proof", "savings",
                                "verified",
                            ],
                            "properties": {
                                "kind": {
                                    "type": "string",
                                    "enum": list(KINDS),
                                },
                                "events": {
                                    "type": "array",
                                    "items": {"type": "integer"},
                                },
                                "var": {"type": ["string", "null"]},
                                "kernels": {
                                    "type": "array",
                                    "items": {"type": "string"},
                                },
                                "queue": {"type": ["integer", "null"]},
                                "proof": {"type": "string"},
                                "savings": {"type": "object"},
                                "remove_events": {
                                    "type": "array",
                                    "items": {"type": "integer"},
                                },
                                "insert_at": {"type": ["integer", "null"]},
                                "verified": {"type": "boolean"},
                            },
                        },
                    },
                },
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected: str | list, path: str) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name == "integer":
            if isinstance(value, int) and not isinstance(value, bool):
                return
        elif name == "number":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return
        elif isinstance(value, _TYPES[name]):
            # bool is an int subclass; don't let it satisfy other types
            if not (isinstance(value, bool) and name not in ("boolean",)):
                return
    raise ValueError(f"{path}: expected {expected}, got {type(value).__name__}")


def _validate(value, schema: dict, path: str) -> None:
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "enum" in schema and value not in schema["enum"]:
        raise ValueError(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ValueError(f"{path}: missing required key '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate(value[key], sub, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]")


def validate_opportunities(doc: dict) -> None:
    """Raise ``ValueError`` iff ``doc`` violates :data:`OPPORTUNITY_SCHEMA`
    (implements the draft-07 subset the schema uses — no jsonschema dep)."""
    _validate(doc, OPPORTUNITY_SCHEMA, "$")


__all__ = [
    "OptimizationOpportunity",
    "OpportunityReport",
    "OPPORTUNITY_SCHEMA",
    "OPPORTUNITY_SCHEMA_VERSION",
    "KINDS",
    "find_opportunities",
    "apply_opportunity",
    "verify_opportunity",
    "replay_fingerprint",
    "reports_to_json",
    "validate_opportunities",
]
