"""Cross-rank message matching and deadlock detection.

Per-rank recorded programs carry ``send``/``recv`` events (halo
exchanges, checkpoint shipping). This pass matches them across ranks —
channel order per ``(source, destination, array)``, the MPI
non-overtaking guarantee — and reports:

``DF101-unmatched-send``
    a send whose channel has fewer receives than sends;
``DF102-unmatched-recv``
    a receive whose channel has fewer sends — dynamically this blocks
    forever, so the static finding is the only finding;
``DF103-send-recv-deadlock``
    a wait cycle: simulating blocking receives against buffered sends,
    every unfinished rank is stopped at a receive whose matching send
    sits *behind* another blocked receive. The witness chain is the
    blocking receive on each rank of the cycle.

Matched pairs become the message edges of the
:class:`~repro.analyze.dataflow.graph.DependenceGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.framework import Diagnostic
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.analyze.rules import rule

Node = tuple[int, int]


@dataclass(frozen=True)
class MessagePair:
    """One matched send → recv edge."""

    send: Node
    recv: Node
    var: str | None


@dataclass
class MessageMatch:
    """Channel-matched messages plus the leftovers."""

    pairs: list[MessagePair] = field(default_factory=list)
    unmatched_sends: list[Node] = field(default_factory=list)
    unmatched_recvs: list[Node] = field(default_factory=list)


def _peer(e: AccEvent) -> int | None:
    return e.peer


def match_messages(programs: list[DirectiveProgram]) -> MessageMatch:
    """FIFO-match sends and recvs on ``(src, dst, var)`` channels.

    Events with no recorded ``peer`` cannot be matched and are skipped
    (single-rank programs' halo events, older recordings)."""
    out = MessageMatch()
    # channel -> ordered sends / recvs
    sends: dict[tuple, list[Node]] = {}
    recvs: dict[tuple, list[Node]] = {}
    for rank, program in enumerate(programs):
        for e in program.events:
            peer = _peer(e)
            if peer is None:
                continue
            if e.kind == "send":
                sends.setdefault((rank, peer, e.var), []).append(
                    (rank, e.index)
                )
            elif e.kind == "recv":
                recvs.setdefault((peer, rank, e.var), []).append(
                    (rank, e.index)
                )
    for channel in sorted(set(sends) | set(recvs), key=str):
        ss = sends.get(channel, [])
        rr = recvs.get(channel, [])
        for s, r in zip(ss, rr):
            out.pairs.append(MessagePair(send=s, recv=r, var=channel[2]))
        out.unmatched_sends.extend(ss[len(rr):])
        out.unmatched_recvs.extend(rr[len(ss):])
    return out


@dataclass
class CrossRankResult:
    """Findings of one cross-rank check."""

    nranks: int
    match: MessageMatch
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: ranks of the detected wait cycle, in blocking order (empty = none)
    deadlock_cycle: tuple[int, ...] = ()

    def clean(self) -> bool:
        return not self.diagnostics


def _simulate_blocking(
    programs: list[DirectiveProgram],
) -> tuple[tuple[int, ...], dict[int, AccEvent]]:
    """Run the ranks' send/recv streams with buffered sends and blocking
    receives. Returns the deadlock cycle's ranks (empty if none) and each
    blocked rank's blocking receive."""
    streams = [
        [e for e in p.events if e.kind in ("send", "recv") and e.peer is not None]
        for p in programs
    ]
    pos = [0] * len(programs)
    buffered: dict[tuple, int] = {}
    progressed = True
    while progressed:
        progressed = False
        for rank, stream in enumerate(streams):
            while pos[rank] < len(stream):
                e = stream[pos[rank]]
                if e.kind == "send":
                    channel = (rank, e.peer, e.var)
                    buffered[channel] = buffered.get(channel, 0) + 1
                    pos[rank] += 1
                    progressed = True
                    continue
                channel = (e.peer, rank, e.var)
                if buffered.get(channel, 0) > 0:
                    buffered[channel] -= 1
                    pos[rank] += 1
                    progressed = True
                    continue
                break  # blocked on this receive
    blocked = {
        rank: streams[rank][pos[rank]]
        for rank in range(len(programs))
        if pos[rank] < len(streams[rank])
    }
    if not blocked:
        return (), {}
    # follow the blocked-on relation (rank -> peer it waits for) from every
    # blocked rank; a revisit closes a genuine wait cycle (a chain that
    # exits the blocked set is an unmatched-recv, reported separately)
    for start in sorted(blocked):
        seen: list[int] = []
        cur = start
        while cur in blocked and cur not in seen:
            seen.append(cur)
            cur = blocked[cur].peer
        if cur in seen:
            return tuple(seen[seen.index(cur):]), blocked
    return (), blocked


def check_ranks(programs: list[DirectiveProgram]) -> CrossRankResult:
    """Match messages across ``programs`` and detect unmatched messages
    and wait-cycle deadlocks."""
    match = match_messages(programs)
    result = CrossRankResult(nranks=len(programs), match=match)

    def emit(key: str, message: str, node: Node, witness: tuple[int, ...]):
        r = rule(key)
        e = programs[node[0]].events[node[1]]
        result.diagnostics.append(Diagnostic(
            pass_name=r.static_pass or "dataflow-rank",
            rule=r.static_rule,
            severity=r.severity,
            message=f"[rank {node[0]}] {message}",
            event_index=node[1],
            var=e.var,
            witness=witness,
        ))

    for node in match.unmatched_sends:
        e = programs[node[0]].events[node[1]]
        emit(
            "unmatched-send",
            rule("unmatched-send").format(
                var=e.var, peer=e.peer, idx=node[1]
            ),
            node, (node[1],),
        )
    for node in match.unmatched_recvs:
        e = programs[node[0]].events[node[1]]
        emit(
            "unmatched-recv",
            rule("unmatched-recv").format(
                var=e.var, peer=e.peer, idx=node[1]
            ),
            node, (node[1],),
        )
    cycle, blocked = _simulate_blocking(programs)
    if cycle:
        result.deadlock_cycle = cycle
        detail = " -> ".join(
            f"rank {r} waits on rank {blocked[r].peer} for "
            f"'{blocked[r].var}'"
            for r in cycle
        )
        anchor_rank = cycle[0]
        anchor = blocked[anchor_rank]
        result.diagnostics.append(Diagnostic(
            pass_name=rule("send-recv-deadlock").static_pass or "dataflow-rank",
            rule=rule("send-recv-deadlock").static_rule,
            severity=rule("send-recv-deadlock").severity,
            message=rule("send-recv-deadlock").format(
                ranks=",".join(str(r) for r in cycle), detail=detail,
            ),
            event_index=anchor.index,
            var=anchor.var,
            witness=tuple(blocked[r].index for r in cycle),
        ))
    return result


__all__ = [
    "MessagePair",
    "MessageMatch",
    "match_messages",
    "CrossRankResult",
    "check_ranks",
]
