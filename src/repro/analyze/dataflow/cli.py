"""Driver behind ``python -m repro deps``.

Builds the dependence graph (and, at ``--ranks N``, the cross-rank
message graph) of a case's recorded schedule, reports the dataflow
engine's findings and optimization opportunities, and exports:

* ``--dot FILE`` — the Graphviz dependence graph of a single target;
* ``--opportunities FILE`` — the schema-validated JSON artifact of
  ``OptimizationOpportunity`` records (the fused-kernel compiler's
  input contract).

Targets mirror ``repro lint``: one seed case, ``all`` (the 12 seed
programs), or ``--script FILE``.
"""

from __future__ import annotations

import json

from repro.analyze.dataflow.crossrank import check_ranks
from repro.analyze.dataflow.graph import DependenceGraph, detect_loops
from repro.analyze.dataflow.opportunities import (
    OpportunityReport,
    find_opportunities,
    reports_to_json,
    validate_opportunities,
)
from repro.analyze.framework import Severity, parse_severity
from repro.analyze.frontend import program_from_script
from repro.analyze.program import DirectiveProgram, ProgramMeta
from repro.utils.errors import ConfigurationError


def _record_case(
    physics: str, ndim: int, mode: str, nt: int, ranks: int
) -> list[DirectiveProgram]:
    from repro.analyze.cli import _SHAPES
    from repro.analyze.drivers import record_pipeline_program
    from repro.sanitize.drivers import sanitize_pipeline

    shape = _SHAPES[ndim]
    name = f"{physics.upper()} {ndim}D ({mode})"
    if ranks <= 1:
        return [record_pipeline_program(
            physics, shape, mode, nt=nt, snap_period=4,
            space_order=4 if ndim == 3 else 8,
            boundary_width=8, name=name,
        )]
    result = sanitize_pipeline(
        physics, shape, mode, ranks=ranks, nt=nt, snap_period=4,
        space_order=4 if ndim == 3 else 8, boundary_width=8,
        name=name,
    )
    return result.programs


def deps_targets(args) -> list[tuple[str, str | None, list[DirectiveProgram]]]:
    """Resolve the CLI namespace into ``(label, mode, per-rank programs)``
    targets."""
    ranks = int(getattr(args, "ranks", 1) or 1)
    if getattr(args, "script", None):
        with open(args.script, encoding="utf-8") as fh:
            program = program_from_script(fh.read())
        program.meta = ProgramMeta(source="script", name=args.script)
        return [(args.script, None, [program])]
    case = getattr(args, "case", None)
    if case is None:
        raise ConfigurationError("deps needs a CASE (or 'all', or --script FILE)")
    modes = ("modeling", "rtm") if args.mode == "both" else (args.mode,)
    if case.lower() == "all":
        from repro.analyze.cli import _INVENTORY

        return [
            (
                f"{physics}{ndim}d", mode,
                _record_case(physics, ndim, mode, args.nt, ranks),
            )
            for physics, ndim in _INVENTORY
            for mode in ("modeling", "rtm")
        ]
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    return [
        (
            f"{physics}{ndim}d", mode,
            _record_case(physics, ndim, mode, args.nt, ranks),
        )
        for mode in modes
    ]


def run_deps_command(args) -> int:
    """``python -m repro deps`` entry point (argparse namespace in)."""
    targets = deps_targets(args)
    if getattr(args, "dot", None) and len(targets) != 1:
        raise ConfigurationError(
            "--dot exports one graph: give a single case and --mode"
        )
    verify = not getattr(args, "no_verify", False)
    reports: list[OpportunityReport] = []
    docs: list[dict] = []
    worst_error = False
    for label, mode, programs in targets:
        graph = DependenceGraph(programs)
        crossrank = check_ranks(programs) if len(programs) > 1 else None
        report = find_opportunities(programs[0], verify=verify)
        report.case = label
        report.mode = mode
        report.program_sha = programs[0].sha()
        reports.append(report)
        regions = detect_loops(programs[0])
        summary = graph.summary()
        doc = {
            "case": label,
            "mode": mode,
            "ranks": len(programs),
            "events": summary.get("events", 0),
            "edges": {
                k: v for k, v in sorted(summary.items()) if k != "events"
            },
            "loops": [
                {"start": r.start, "period": r.period, "reps": r.reps}
                for r in regions
            ],
            "opportunities": len(report.opportunities),
            "verified_opportunities": len(report.verified()),
            "crossrank": (
                [d.to_dict() for d in crossrank.diagnostics]
                if crossrank is not None else []
            ),
        }
        docs.append(doc)
        if crossrank is not None and any(
            d.severity >= Severity.ERROR for d in crossrank.diagnostics
        ):
            worst_error = True
        if getattr(args, "dot", None):
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(graph.to_dot())
    if getattr(args, "opportunities", None):
        artifact = reports_to_json(reports)
        validate_opportunities(artifact)
        with open(args.opportunities, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
    if getattr(args, "format", "text") == "json":
        print(json.dumps({"targets": docs}, indent=2))
    else:
        for doc in docs:
            _print_target(doc)
    fail_on = getattr(args, "fail_on", "none") or "none"
    if fail_on.lower() == "none":
        return 0
    threshold = parse_severity(fail_on)
    if threshold <= Severity.ERROR and worst_error:
        return 1
    return 0


def _print_target(doc: dict) -> None:
    mode = f" ({doc['mode']})" if doc.get("mode") else ""
    title = f"deps {doc['case']}{mode} x{doc['ranks']}"
    print(title)
    print("-" * len(title))
    edges = ", ".join(f"{k}={v}" for k, v in doc["edges"].items())
    print(f"  events {doc['events']}, edges: {edges}")
    for loop in doc["loops"]:
        print(
            f"  loop @ {loop['start']}: period {loop['period']} "
            f"x {loop['reps']} reps"
        )
    print(
        f"  opportunities: {doc['opportunities']} "
        f"({doc['verified_opportunities']} verified)"
    )
    for d in doc["crossrank"]:
        print(f"  [{d['severity']}] {d['rule']}: {d['message']}")


__all__ = ["run_deps_command", "deps_targets"]
