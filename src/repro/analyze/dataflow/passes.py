"""The dataflow engine as a lint pass (``repro lint --deep``)."""

from __future__ import annotations

from repro.analyze.framework import Diagnostic, LintPass
from repro.analyze.program import DirectiveProgram


class DataflowCoherencePass(LintPass):
    """Fixed-point coherence proofs over the whole program: the
    sanitizer's five dynamic error rules as static ``DF00x`` findings
    with event-chain witnesses (see :mod:`repro.analyze.dataflow.absint`)."""

    name = "dataflow"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:
        from repro.analyze.dataflow.absint import interpret_program

        return interpret_program(program).diagnostics


__all__ = ["DataflowCoherencePass"]
