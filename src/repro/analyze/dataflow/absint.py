"""Fixed-point abstract interpretation of host/device coherence state.

The abstract domain mirrors the sanitizer's shadow state
(:mod:`repro.sanitize.shadow`) — per present array, the set of byte
intervals whose *host* copy is dirty (written, not yet pushed) and whose
*device* copy is dirty (possibly kernel-written, not yet pulled) — but
every interval carries the **event index that caused it**, so a finding
comes with an event-chain witness instead of a point location. Two extra
components track in-flight asynchronous ``update host`` operations (for
the send-before-sync rule) and the last partial ``update device`` per
array (for short-ghost classification).

The lattice is the powerset of byte intervals per array (ordered by
coverage inclusion) × the powerset of pending-op identities; both are
finite for a fixed program, and every transfer function is monotone in
coverage, so iteration terminates.

**Loop closure**: :func:`~repro.analyze.dataflow.graph.detect_loops`
recovers the time loop(s) from the recorded stream; each region's body is
interpreted repeatedly, joining the exit state back into the entry state,
until the entry state stops growing. The final reporting pass then runs
the body once from the converged state — so a stale read that only
manifests from the *second* iteration onward (the classic first-iteration
-clean bug) is still proven. Interpreting the sanitizer's five dynamic
rules this way turns them into compile-time ``DF00x`` findings keyed by
the shared registry (:mod:`repro.analyze.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.dataflow.graph import LoopRegion, detect_loops
from repro.analyze.framework import Diagnostic
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.analyze.rules import rule
from repro.sanitize.shadow import (
    UNKNOWN_EXTENT,
    describe,
    normalize,
    subtract_interval,
)

_ITEMSIZE = 4  # float32 wavefields throughout the reproduction

#: a caused interval: ``[lo, hi)`` dirtied by event ``cause``
Civ = tuple[int, int, int]


# ----------------------------------------------------------------------
# caused-interval algebra
# ----------------------------------------------------------------------
def _civ_subtract(ivs: list[Civ], lo: int, hi: int) -> list[Civ]:
    if hi <= lo:
        return list(ivs)
    out: list[Civ] = []
    for a, b, c in ivs:
        if b <= lo or a >= hi:
            out.append((a, b, c))
            continue
        if a < lo:
            out.append((a, lo, c))
        if b > hi:
            out.append((hi, b, c))
    return out


def _civ_add(ivs: list[Civ], lo: int, hi: int, cause: int) -> list[Civ]:
    if hi <= lo:
        return list(ivs)
    out = _civ_subtract(ivs, lo, hi)
    out.append((lo, hi, cause))
    out.sort()
    return out


def _civ_intersect(ivs: list[Civ], lo: int, hi: int) -> list[Civ]:
    out: list[Civ] = []
    for a, b, c in ivs:
        x, y = max(a, lo), min(b, hi)
        if y > x:
            out.append((x, y, c))
    return out


def _coverage(ivs: list[Civ]) -> list[tuple[int, int]]:
    return normalize([(a, b) for a, b, _ in ivs])


def _civ_join(a: list[Civ], b: list[Civ]) -> list[Civ]:
    """Coverage union; where both cover, ``a``'s causes win (they are the
    older state, which keeps causes stable across fixpoint iterations)."""
    out = list(a)
    covered = _coverage(a)
    for lo, hi, c in b:
        gaps = [(lo, hi)]
        for x, y in covered:
            gaps = subtract_interval(gaps, x, y)
        for x, y in gaps:
            out.append((x, y, c))
    out.sort()
    return out


# ----------------------------------------------------------------------
# abstract state
# ----------------------------------------------------------------------
@dataclass
class _ArrayState:
    extent: int = UNKNOWN_EXTENT
    host_dirty: list[Civ] = field(default_factory=list)
    dev_dirty: list[Civ] = field(default_factory=list)

    def copy(self) -> "_ArrayState":
        return _ArrayState(
            self.extent, list(self.host_dirty), list(self.dev_dirty)
        )

    def _range(self, offset: int, nbytes: int | None) -> tuple[int, int]:
        lo = max(0, int(offset))
        hi = self.extent if nbytes is None else lo + int(nbytes)
        return lo, min(hi, self.extent)


#: one in-flight async ``update host``: (queue, lo, hi, event index)
Pending = tuple[int, int, int, int]


@dataclass
class _State:
    arrays: dict[str, _ArrayState] = field(default_factory=dict)
    pending: dict[str, frozenset[Pending]] = field(default_factory=dict)
    #: var -> event indices of candidate last partial ``update device``
    last_partial: dict[str, frozenset[int]] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(
            arrays={k: v.copy() for k, v in self.arrays.items()},
            pending=dict(self.pending),
            last_partial=dict(self.last_partial),
        )

    def join(self, other: "_State") -> "_State":
        out = self.copy()
        for name, st in other.arrays.items():
            mine = out.arrays.get(name)
            if mine is None:
                out.arrays[name] = st.copy()
            else:
                mine.host_dirty = _civ_join(mine.host_dirty, st.host_dirty)
                mine.dev_dirty = _civ_join(mine.dev_dirty, st.dev_dirty)
        for name, ops in other.pending.items():
            out.pending[name] = out.pending.get(name, frozenset()) | ops
        for name, idxs in other.last_partial.items():
            out.last_partial[name] = (
                out.last_partial.get(name, frozenset()) | idxs
            )
        return out

    def _shape(self) -> tuple:
        """Coverage-level fingerprint: equal shapes = fixpoint reached."""
        return (
            tuple(sorted(
                (n, tuple(_coverage(s.host_dirty)),
                 tuple(_coverage(s.dev_dirty)))
                for n, s in self.arrays.items()
            )),
            tuple(sorted(
                (n, tuple(sorted(ops)))
                for n, ops in self.pending.items() if ops
            )),
            tuple(sorted(
                (n, tuple(sorted(idxs)))
                for n, idxs in self.last_partial.items() if idxs
            )),
        )

    def same_coverage(self, other: "_State") -> bool:
        return self._shape() == other._shape()


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class CoherenceSummary:
    """What the interpreter proved about one program."""

    program: DirectiveProgram
    diagnostics: list[Diagnostic]
    regions: list[LoopRegion]
    #: per update-event steady-state facts: how many dirty bytes the
    #: transfer actually cleared on each side (0 on both = dead transfer)
    facts: dict[int, dict[str, int]]
    #: fixpoint iterations each region needed to converge
    iterations: dict[int, int]

    def clean(self) -> bool:
        return not self.diagnostics


def _fmt(intervals: list[tuple[int, int]]) -> str:
    if any(hi >= UNKNOWN_EXTENT for _, hi in intervals):
        return "the full extent"
    return "bytes " + describe(intervals)


class _Engine:
    """The transfer functions + diagnostic collection."""

    def __init__(self, program: DirectiveProgram):
        self.program = program
        self._found: dict[tuple, Diagnostic] = {}
        self.facts: dict[int, dict[str, int]] = {}

    # -- findings ------------------------------------------------------
    def diagnostics(self) -> list[Diagnostic]:
        return list(self._found.values())

    def _emit(
        self,
        key: str,
        message: str,
        event: AccEvent,
        witness: tuple[int, ...],
        var: str | None = None,
        kernel: str | None = None,
    ) -> None:
        r = rule(key)
        dedup = (key, var, kernel, event.index)
        if dedup in self._found:
            return
        self._found[dedup] = Diagnostic(
            pass_name=r.static_pass or "dataflow",
            rule=r.static_rule,
            severity=r.severity,
            message=message,
            event_index=event.index,
            var=var,
            kernel=kernel,
            witness=witness,
        )

    @staticmethod
    def _witness(causes: list[Civ], *tail: int) -> tuple[int, ...]:
        chain = sorted({c for _, _, c in causes if c >= 0})
        return tuple(chain) + tail

    # -- interpretation ------------------------------------------------
    def run_range(
        self, state: _State, start: int, stop: int, emit: bool
    ) -> _State:
        for e in self.program.events[start:stop]:
            self.step(state, e, emit)
        return state

    def step(self, state: _State, e: AccEvent, emit: bool) -> None:
        handler = getattr(self, f"_on_{e.kind}", None)
        if handler is not None:
            handler(state, e, emit)

    def _array(self, state: _State, name: str | None) -> _ArrayState | None:
        return state.arrays.get(name) if name is not None else None

    def _extent(self, name: str) -> int:
        return self.program.extents.get(name) or UNKNOWN_EXTENT

    # -- lifetime ------------------------------------------------------
    def _on_enter(self, state: _State, e: AccEvent, emit: bool) -> None:
        for name in e.copyin + e.create:
            if name not in state.arrays:
                state.arrays[name] = _ArrayState(extent=self._extent(name))

    def _on_exit(self, state: _State, e: AccEvent, emit: bool) -> None:
        for name in e.copyout:
            st = self._array(state, name)
            if st is None:
                continue
            stale = _civ_intersect(st.host_dirty, 0, st.extent)
            if stale and emit:
                self._emit(
                    "stale-device-read",
                    rule("stale-device-read").format_alt(
                        var=name, ranges=_fmt(_coverage(stale))
                    ),
                    e, self._witness(stale, e.index), var=name,
                )
        for name in e.copyout + e.delete:
            state.arrays.pop(name, None)
            state.pending.pop(name, None)
            state.last_partial.pop(name, None)

    # -- transfers -----------------------------------------------------
    def _on_update(self, state: _State, e: AccEvent, emit: bool) -> None:
        st = self._array(state, e.var)
        if st is None:
            return
        if (
            e.nbytes is not None
            and st.extent < UNKNOWN_EXTENT
            and e.offset + e.nbytes > st.extent
        ):
            if emit:
                self._emit(
                    "ghost-transfer-out-of-bounds",
                    rule("ghost-transfer-out-of-bounds").format(
                        direction=e.direction, var=e.var, lo=e.offset,
                        hi=e.offset + e.nbytes, extent=st.extent,
                    ),
                    e, (e.index,), var=e.var,
                )
        lo, hi = st._range(e.offset, e.nbytes)
        if emit:
            self.facts[e.index] = {
                "host_dirty_cleared": sum(
                    b - a for a, b in
                    _coverage(_civ_intersect(st.host_dirty, lo, hi))
                ),
                "dev_dirty_cleared": sum(
                    b - a for a, b in
                    _coverage(_civ_intersect(st.dev_dirty, lo, hi))
                ),
            }
        st.host_dirty = _civ_subtract(st.host_dirty, lo, hi)
        st.dev_dirty = _civ_subtract(st.dev_dirty, lo, hi)
        if e.direction == "device":
            if e.nbytes is not None and not self.program.full_extent(e):
                state.last_partial[e.var] = frozenset({e.index})
            else:
                state.last_partial.pop(e.var, None)
        elif e.queue is not None:
            state.pending[e.var] = state.pending.get(
                e.var, frozenset()
            ) | {(e.queue, lo, hi, e.index)}

    # -- synchronisation -----------------------------------------------
    def _on_wait(self, state: _State, e: AccEvent, emit: bool) -> None:
        self._drain(state, e.wait_on or None)

    def _drain(self, state: _State, queues: tuple[int, ...] | None) -> None:
        """A wait on ``queues`` (None = all) completes the pending ops."""
        for name in list(state.pending):
            left = frozenset(
                p for p in state.pending[name]
                if queues is not None and p[0] not in queues
            )
            if left:
                state.pending[name] = left
            else:
                del state.pending[name]

    # -- compute -------------------------------------------------------
    def _on_compute(self, state: _State, e: AccEvent, emit: bool) -> None:
        if e.wait_all:
            self._drain(state, None)
        elif e.wait_on:
            self._drain(state, e.wait_on)
        for name in dict.fromkeys(e.reads + e.writes):
            st = self._array(state, name)
            if st is None:
                continue
            stale = _civ_intersect(st.host_dirty, 0, st.extent)
            if stale and emit:
                self._classify_device_stale(state, e, name, st, stale)
        for name, how in e.accesses(conservative=True):
            if how != "w":
                continue
            st = self._array(state, name)
            if st is not None:
                lo, hi = st._range(0, None)
                st.dev_dirty = _civ_add(st.dev_dirty, lo, hi, e.index)

    def _ghost_requirement(self, e: AccEvent) -> int | None:
        if not e.halo or len(e.loop_dims) < 2:
            return None
        plane = _ITEMSIZE
        for d in e.loop_dims[1:]:
            plane *= int(d)
        return int(e.halo) * plane

    def _classify_device_stale(
        self, state: _State, e: AccEvent, name: str,
        st: _ArrayState, stale: list[Civ],
    ) -> None:
        required = self._ghost_requirement(e)
        coverage = _coverage(stale)
        for idx in sorted(state.last_partial.get(name, ())):
            last = self.program.events[idx]
            if (
                required
                and st.extent < UNKNOWN_EXTENT
                and (last.nbytes or 0) < required
            ):
                faces_left = subtract_interval(
                    subtract_interval(coverage, 0, required),
                    st.extent - required, st.extent,
                )
                if not faces_left:
                    self._emit(
                        "short-ghost-transfer",
                        rule("short-ghost-transfer").format(
                            var=name, moved=int(last.nbytes or 0),
                            halo=e.halo, required=required,
                            kernel=e.kernel, ranges=_fmt(coverage),
                        ),
                        e, self._witness(stale, idx, e.index),
                        var=name, kernel=e.kernel,
                    )
                    return
        self._emit(
            "stale-device-read",
            rule("stale-device-read").format(
                consumer=f"kernel '{e.kernel}'", var=name,
                ranges=_fmt(coverage),
            ),
            e, self._witness(stale, e.index), var=name, kernel=e.kernel,
        )

    # -- host-side consumers -------------------------------------------
    def _on_host_write(self, state: _State, e: AccEvent, emit: bool) -> None:
        for name in e.writes:
            st = self._array(state, name)
            if st is not None:
                lo, hi = st._range(e.offset, e.nbytes)
                st.host_dirty = _civ_add(st.host_dirty, lo, hi, e.index)

    def _on_host_read(self, state: _State, e: AccEvent, emit: bool) -> None:
        for name in e.reads:
            self._host_consumer(
                state, e, name, e.offset, e.nbytes, "host read", emit
            )

    def _on_send(self, state: _State, e: AccEvent, emit: bool) -> None:
        what = "halo send" if (e.label and "halo" in e.label) else "MPI send"
        self._host_consumer(state, e, e.var, e.offset, e.nbytes, what, emit)

    def _on_recv(self, state: _State, e: AccEvent, emit: bool) -> None:
        st = self._array(state, e.var)
        if st is not None:
            lo, hi = st._range(e.offset, e.nbytes)
            st.host_dirty = _civ_add(st.host_dirty, lo, hi, e.index)

    def _host_consumer(
        self,
        state: _State,
        e: AccEvent,
        name: str | None,
        offset: int,
        nbytes: int | None,
        what: str,
        emit: bool,
    ) -> None:
        st = self._array(state, name)
        if st is None or not emit:
            return
        lo, hi = st._range(offset, nbytes)
        stale = _civ_intersect(st.dev_dirty, lo, hi)
        if stale:
            self._emit(
                "stale-host-read",
                rule("stale-host-read").format(
                    consumer=what, var=name, ranges=_fmt(_coverage(stale)),
                ),
                e, self._witness(stale, e.index), var=name,
            )
        for queue, plo, phi, idx in sorted(state.pending.get(name, ())):
            if phi <= lo or plo >= hi:
                continue
            self._emit(
                "halo-send-before-sync",
                rule("halo-send-before-sync").format(
                    consumer=what, var=name, lo=lo, hi=min(hi, phi),
                    queue=queue,
                ),
                e, (idx, e.index), var=name,
            )


#: safety net on fixpoint iteration — the lattice is finite so closure
#: converges in a handful of rounds; this bound only guards a bug
_MAX_FIXPOINT_ITERS = 64


def interpret_program(program: DirectiveProgram) -> CoherenceSummary:
    """Interpret one program with loop closure; return diagnostics,
    detected loop regions and per-transfer steady-state facts."""
    regions = detect_loops(program)
    regions_by_start = {r.start: r for r in regions}
    engine = _Engine(program)
    state = _State()
    iterations: dict[int, int] = {}
    i = 0
    n = len(program.events)
    while i < n:
        region = regions_by_start.get(i)
        if region is not None and region.period > 0:
            head = state
            rounds = 0
            for rounds in range(1, _MAX_FIXPOINT_ITERS + 1):
                out = engine.run_range(
                    head.copy(), region.start,
                    region.start + region.period, emit=False,
                )
                joined = head.join(out)
                if joined.same_coverage(head):
                    break
                head = joined
            iterations[region.start] = rounds
            state = engine.run_range(
                head, region.start, region.start + region.period, emit=True
            )
            i = region.stop
        else:
            engine.step(state, program.events[i], emit=True)
            i += 1
    return CoherenceSummary(
        program=program,
        diagnostics=engine.diagnostics(),
        regions=regions,
        facts=engine.facts,
        iterations=iterations,
    )


__all__ = ["CoherenceSummary", "interpret_program"]
