"""The dependence graph over AccEvents, and the step-loop detector.

Nodes are ``(rank, event_index)`` pairs (rank 0 for single-program
graphs). Two edge families:

*order edges* (happens-before)
    the execution order the runtime guarantees — the host timeline (one
    synchronous event after another), each async queue's FIFO, the
    enqueue edge from the host into every async launch, and the join
    edges a ``wait`` / ``wait_all`` / ``wait(q)`` clause creates; plus
    send → recv message edges across ranks.

*dependence edges* (RAW / WAR / WAW)
    per-array data dependences from
    :meth:`~repro.analyze.program.AccEvent.accesses` with
    ``conservative=True`` — a recorded kernel may write anything it has
    present, so the graph must assume it does.

``happens_before`` answers reachability over the order edges; an edge in
the dependence family that is *not* covered by the order family is
exactly what the async-race pass reports dynamically. The opportunity
pass uses the combination: two computes may fuse iff no third event
depends on the first and is depended on by the second.

:func:`detect_loops` recovers the time loop(s) from the recorded event
stream by periodicity over per-event signatures — the abstract
interpreter closes those regions to a fixpoint instead of unrolling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analyze.program import AccEvent, DirectiveProgram

Node = tuple[int, int]  # (rank, event index)

#: dependence-edge kinds, in reporting order
DEP_KINDS = ("raw", "war", "waw")


@dataclass(frozen=True)
class DepEdge:
    """One edge: ``src`` happens-before / feeds ``dst``."""

    src: Node
    dst: Node
    kind: str  # 'order' | 'message' | 'raw' | 'war' | 'waw'
    var: str | None = None


@dataclass(frozen=True)
class LoopRegion:
    """One periodic region of the event stream: ``reps`` repetitions of
    the ``period`` events starting at ``start``."""

    start: int
    period: int
    reps: int

    @property
    def stop(self) -> int:
        return self.start + self.period * self.reps

    def body(self) -> range:
        """Event indices of the first iteration — the loop body."""
        return range(self.start, self.start + self.period)


def _signature(e: AccEvent) -> tuple:
    """Event identity modulo loop position: two iterations of the same
    step loop produce equal signatures event-for-event. ``label`` is
    excluded — script events carry their source line in it, which would
    make every iteration unique; the abstract semantics never read it."""
    return (
        e.kind, e.queue, e.copyin, e.create, e.delete, e.copyout,
        e.direction, e.var, e.nbytes, e.offset, e.peer, e.construct,
        e.kernel, e.reads, e.writes, e.writes_known, e.wait_on, e.wait_all,
    )


def detect_loops(
    program: DirectiveProgram, min_reps: int = 2, max_period: int = 256
) -> list[LoopRegion]:
    """Find non-overlapping maximal periodic regions (the time loops).

    For each candidate period the longest run of ``sig[i] == sig[i+p]``
    is found; regions are accepted greedily by covered length, smallest
    period first, so a 4-step snapshot cycle is reported as one region of
    period ``4 * step`` rather than many single steps.
    """
    sigs = [_signature(e) for e in program.events]
    n = len(sigs)
    candidates: list[tuple[int, int, int]] = []  # (start, period, reps)
    for period in range(1, min(max_period, n // min_reps) + 1):
        match = [False] * n
        for i in range(n - period):
            match[i] = sigs[i] == sigs[i + period]
        i = 0
        while i < n - period:
            if not match[i]:
                i += 1
                continue
            j = i
            while j < n - period and match[j]:
                j += 1
            # sigs[i .. j+period) is periodic with this period
            reps = (j + period - i) // period
            if reps >= min_reps:
                candidates.append((i, period, reps))
            i = j + 1
    # prefer large coverage; among equals, the smaller period (tighter loop)
    candidates.sort(key=lambda c: (-(c[1] * c[2]), c[1], c[0]))
    chosen: list[LoopRegion] = []
    taken: list[tuple[int, int]] = []
    for start, period, reps in candidates:
        stop = start + period * reps
        if any(start < t_stop and stop > t_start for t_start, t_stop in taken):
            continue
        chosen.append(LoopRegion(start=start, period=period, reps=reps))
        taken.append((start, stop))
    chosen.sort(key=lambda r: r.start)
    return chosen


class DependenceGraph:
    """Order + dependence edges over one or more ranks' programs."""

    def __init__(self, programs: list[DirectiveProgram]):
        self.programs = programs
        self.edges: list[DepEdge] = []
        self._order_adj: dict[Node, list[Node]] = {}
        self._build()

    @classmethod
    def from_program(cls, program: DirectiveProgram) -> "DependenceGraph":
        return cls([program])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, src: Node, dst: Node, kind: str, var: str | None = None):
        if src == dst:
            return
        self.edges.append(DepEdge(src=src, dst=dst, kind=kind, var=var))
        if kind in ("order", "message"):
            self._order_adj.setdefault(src, []).append(dst)

    def _build(self) -> None:
        for rank, program in enumerate(self.programs):
            self._build_order(rank, program)
            self._build_deps(rank, program)
        if len(self.programs) > 1:
            self._build_messages()

    def _build_order(self, rank: int, program: DirectiveProgram) -> None:
        """The runtime's guaranteed execution order within one rank."""
        last_host: int | None = None
        last_q: dict[int, int] = {}
        for e in program.events:
            node = (rank, e.index)
            joins: list[int] = []
            if e.kind == "wait":
                queues = e.wait_on or tuple(last_q)
                joins += [last_q[q] for q in queues if q in last_q]
            if e.kind == "compute":
                if e.wait_all:
                    joins += list(last_q.values())
                joins += [last_q[q] for q in e.wait_on if q in last_q]
            for j in joins:
                self._add((rank, j), node, "order")
            if last_host is not None:
                # every event — synchronous or an async *enqueue* — is
                # ordered after the host's program position
                self._add((rank, last_host), node, "order")
            if e.queue is None or e.kind == "wait":
                last_host = e.index
                if e.kind == "wait":
                    # the host now trails every joined queue; the joined
                    # queues' histories are behind `node` via the join edges
                    for q in (e.wait_on or tuple(last_q)):
                        last_q[q] = e.index
            else:
                if e.queue in last_q:
                    self._add((rank, last_q[e.queue]), node, "order")
                last_q[e.queue] = e.index

    def _build_deps(self, rank: int, program: DirectiveProgram) -> None:
        """Classic last-writer / readers-since scan per array."""
        last_writer: dict[str, int] = {}
        readers_since: dict[str, list[int]] = {}
        for e in program.events:
            node = (rank, e.index)
            for name, how in e.accesses(conservative=True):
                if name is None:
                    continue
                if how == "r":
                    if name in last_writer:
                        self._add(
                            (rank, last_writer[name]), node, "raw", var=name
                        )
                    readers_since.setdefault(name, []).append(e.index)
                else:
                    if name in last_writer:
                        self._add(
                            (rank, last_writer[name]), node, "waw", var=name
                        )
                    for r in readers_since.get(name, ()):
                        if r != e.index:
                            self._add((rank, r), node, "war", var=name)
                    last_writer[name] = e.index
                    readers_since[name] = []

    def _build_messages(self) -> None:
        from repro.analyze.dataflow.crossrank import match_messages

        for pair in match_messages(self.programs).pairs:
            self._add(pair.send, pair.recv, "message", var=pair.var)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _norm(self, node: Node | int) -> Node:
        return (0, node) if isinstance(node, int) else node

    def happens_before(self, a: Node | int, b: Node | int) -> bool:
        """Whether the runtime guarantees ``a`` completes before ``b``
        starts (reachability over order + message edges)."""
        a, b = self._norm(a), self._norm(b)
        if a == b:
            return False
        seen = {a}
        frontier = deque([a])
        while frontier:
            cur = frontier.popleft()
            for nxt in self._order_adj.get(cur, ()):
                if nxt == b:
                    return True
                if nxt not in seen:
                    # within a rank all order edges point forward; prune
                    # nodes already past b on b's own rank
                    if nxt[0] == b[0] and nxt[1] > b[1]:
                        continue
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def dependences(
        self, kinds: tuple[str, ...] = DEP_KINDS
    ) -> list[DepEdge]:
        return [e for e in self.edges if e.kind in kinds]

    def dependences_between(
        self, a: Node | int, b: Node | int
    ) -> list[DepEdge]:
        """Dependence edges into ``b`` from events strictly after ``a``
        (same rank) — the blockers of moving ``b`` adjacent to ``a``."""
        a, b = self._norm(a), self._norm(b)
        out = []
        for e in self.dependences():
            if e.dst == b and e.src[0] == a[0] and a[1] < e.src[1] < b[1]:
                out.append(e)
        return out

    def unsynchronised(self) -> list[DepEdge]:
        """Dependence edges not covered by the happens-before order — the
        statically-visible races (agrees with the async-race pass)."""
        out = []
        for e in self.dependences():
            if e.src[0] == e.dst[0] and not self.happens_before(e.src, e.dst):
                out.append(e)
        return out

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.edges:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        counts["events"] = sum(len(p.events) for p in self.programs)
        return counts

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dot(self, max_events: int | None = None) -> str:
        """Graphviz digraph: order edges gray, dependences colored by kind."""
        colors = {
            "order": "gray70", "message": "blue",
            "raw": "red", "war": "orange", "waw": "purple",
        }
        lines = [
            "digraph dependences {",
            "  rankdir=TB;",
            '  node [shape=box, fontsize=9, fontname="monospace"];',
        ]
        for rank, program in enumerate(self.programs):
            events = program.events
            if max_events is not None:
                events = events[:max_events]
            prefix = f"r{rank}_" if len(self.programs) > 1 else "n"
            if len(self.programs) > 1:
                lines.append(f"  subgraph cluster_{rank} {{")
                lines.append(f'    label="rank {rank}";')
            for e in events:
                what = e.kernel or e.var or ",".join(
                    e.copyin + e.create + e.copyout + e.delete
                ) or ""
                q = f" q{e.queue}" if e.queue is not None else ""
                label = f"{e.index}: {e.kind}{q} {what}".strip()
                lines.append(
                    f'  {prefix}{e.index} [label="{label}"];'
                )
            if len(self.programs) > 1:
                lines.append("  }")
        shown = {
            (rank, e.index)
            for rank, program in enumerate(self.programs)
            for e in (
                program.events if max_events is None
                else program.events[:max_events]
            )
        }

        def name(node: Node) -> str:
            return (
                f"r{node[0]}_{node[1]}" if len(self.programs) > 1
                else f"n{node[1]}"
            )

        for e in self.edges:
            if e.src not in shown or e.dst not in shown:
                continue
            attrs = [f"color={colors.get(e.kind, 'black')}"]
            if e.kind in DEP_KINDS:
                attrs.append(f'label="{e.kind}:{e.var}"')
                attrs.append("fontsize=8")
            lines.append(
                f"  {name(e.src)} -> {name(e.dst)} [{', '.join(attrs)}];"
            )
        lines.append("}")
        return "\n".join(lines)


__all__ = [
    "DepEdge",
    "DependenceGraph",
    "LoopRegion",
    "detect_loops",
    "DEP_KINDS",
]
