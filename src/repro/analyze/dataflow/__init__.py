"""Whole-program dataflow engine over the DirectiveProgram IR.

Where the four local lint passes pattern-match event windows and the
sanitizer shadows an *executed* schedule, this package reasons about the
whole program statically:

* :mod:`~repro.analyze.dataflow.graph` — a :class:`DependenceGraph` over
  :class:`~repro.analyze.program.AccEvent`\\ s: RAW/WAR/WAW edges from
  ``accesses(conservative=True)`` joined with the happens-before order
  induced by queues, ``wait``/``wait_all`` and send/recv message edges,
  with reachability queries and Graphviz export;
* :mod:`~repro.analyze.dataflow.absint` — a fixed-point abstract
  interpreter over per-array host/device dirty byte intervals; the step
  loop is closed (the body iterates to a fixpoint) so steady-state facts
  hold, and the sanitizer's five error rules become compile-time ``DF*``
  diagnostics with event-chain witnesses;
* :mod:`~repro.analyze.dataflow.crossrank` — send/recv matching across
  per-rank programs: unmatched messages and wait-cycle deadlocks;
* :mod:`~repro.analyze.dataflow.opportunities` — ``OptimizationOpportunity``
  records (kernel fusion, update hoisting, cancellable update pairs) with
  machine-checked proofs: each candidate replays its transformed schedule
  through the sanitizer and must land bitwise-equal.

``repro lint --deep`` runs the coherence engine beside the default
passes; ``repro deps`` exposes the graph (``--dot``) and the opportunity
artifact (``--opportunities``) consumed — hash-gated — by the
fused-kernel compiler, :mod:`repro.compile`.
"""

from repro.analyze.dataflow.absint import (
    CoherenceSummary,
    interpret_program,
)
from repro.analyze.dataflow.crossrank import (
    CrossRankResult,
    check_ranks,
    match_messages,
)
from repro.analyze.dataflow.graph import (
    DepEdge,
    DependenceGraph,
    LoopRegion,
    detect_loops,
)
from repro.analyze.dataflow.opportunities import (
    OPPORTUNITY_SCHEMA,
    OpportunityReport,
    OptimizationOpportunity,
    apply_opportunity,
    find_opportunities,
    replay_fingerprint,
    reports_to_json,
    validate_opportunities,
    verify_opportunity,
)
from repro.analyze.dataflow.passes import DataflowCoherencePass

__all__ = [
    "DependenceGraph",
    "DepEdge",
    "LoopRegion",
    "detect_loops",
    "CoherenceSummary",
    "interpret_program",
    "CrossRankResult",
    "check_ranks",
    "match_messages",
    "OptimizationOpportunity",
    "OpportunityReport",
    "OPPORTUNITY_SCHEMA",
    "find_opportunities",
    "apply_opportunity",
    "verify_opportunity",
    "replay_fingerprint",
    "reports_to_json",
    "validate_opportunities",
    "DataflowCoherencePass",
]
