"""Pass framework: severities, diagnostics, the pass protocol and driver.

A lint pass is a callable object with a ``name`` and a
``run(program) -> list[Diagnostic]`` method. :func:`run_passes` drives the
registered passes over one :class:`~repro.analyze.program.DirectiveProgram`
and returns the merged, severity-ranked findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.analyze.program import DirectiveProgram
from repro.utils.errors import ConfigurationError


class Severity(IntEnum):
    """Ranked finding severity (higher = worse)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


def parse_severity(text: str) -> Severity:
    """``'error'`` -> :data:`Severity.ERROR` (used by ``--fail-on``)."""
    try:
        return Severity[text.strip().upper()]
    except KeyError:
        known = ", ".join(s.name.lower() for s in Severity)
        raise ConfigurationError(
            f"unknown severity '{text}' (expected one of: {known})"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: which pass, which rule, how bad, where."""

    pass_name: str
    rule: str
    severity: Severity
    message: str
    #: program position (event index) the finding anchors to
    event_index: int | None = None
    #: array / kernel the finding concerns, when there is one
    var: str | None = None
    kernel: str | None = None
    #: machine-applicable remedy (a :class:`repro.sanitize.fixit.ScriptFix`)
    #: when the pass can propose one; ``--fix`` consumes these
    fix: object | None = None
    #: event-chain witness: the event indices (cause ... consumer) whose
    #: interleaving exhibits the finding — static dataflow proofs fill this
    witness: tuple[int, ...] = ()

    def location(self, program: DirectiveProgram | None = None) -> str:
        if self.event_index is None:
            return "program"
        loc = f"event {self.event_index}"
        if program is not None and 0 <= self.event_index < len(program.events):
            label = program.events[self.event_index].label
            if label:
                loc = f"{label} ({loc})"
        return loc

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "event": self.event_index,
            "var": self.var,
            "kernel": self.kernel,
            "fix": str(self.fix) if self.fix is not None else None,
            "witness": list(self.witness),
        }


class LintPass:
    """Base class; subclasses set ``name`` and implement :meth:`run`."""

    name = "pass"

    def run(self, program: DirectiveProgram) -> list[Diagnostic]:  # pragma: no cover
        raise NotImplementedError

    def diag(
        self,
        rule: str,
        severity: Severity,
        message: str,
        event_index: int | None = None,
        var: str | None = None,
        kernel: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(self.name, rule, severity, message, event_index, var, kernel)


def default_passes() -> tuple[LintPass, ...]:
    """The four shipped passes, in catalogue order."""
    from repro.analyze.async_race import AsyncRacePass
    from repro.analyze.present_lifetime import PresentLifetimePass
    from repro.analyze.schedule_lint import ScheduleLintPass
    from repro.analyze.transfer import TransferEfficiencyPass

    return (
        PresentLifetimePass(),
        AsyncRacePass(),
        ScheduleLintPass(),
        TransferEfficiencyPass(),
    )


def deep_passes() -> tuple[LintPass, ...]:
    """The four shipped passes plus the whole-program dataflow engine
    (``lint --deep`` and the strict pipeline gate)."""
    from repro.analyze.dataflow import DataflowCoherencePass

    return default_passes() + (DataflowCoherencePass(),)


def run_passes(
    program: DirectiveProgram, passes: tuple[LintPass, ...] | None = None
) -> list[Diagnostic]:
    """Run ``passes`` (default: all four) and rank the merged findings
    worst-first, then by program position."""
    passes = passes if passes is not None else default_passes()
    out: list[Diagnostic] = []
    for p in passes:
        out.extend(p.run(program))
    out.sort(key=lambda d: (-int(d.severity), d.event_index if d.event_index is not None else -1))
    return out


@dataclass
class LintResult:
    """Findings of one linted program, with gating helpers."""

    program: DirectiveProgram
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def worst(self) -> Severity | None:
        return max((d.severity for d in self.diagnostics), default=None)

    def fails(self, threshold: Severity) -> bool:
        """Whether any finding is at or above ``threshold``."""
        return any(d.severity >= threshold for d in self.diagnostics)


def lint_program(
    program: DirectiveProgram, passes: tuple[LintPass, ...] | None = None
) -> LintResult:
    """Convenience: run the passes and wrap the findings."""
    return LintResult(program, run_passes(program, passes))


__all__ = [
    "Severity",
    "parse_severity",
    "Diagnostic",
    "LintPass",
    "LintResult",
    "default_passes",
    "deep_passes",
    "run_passes",
    "lint_program",
]
