"""Driver behind ``python -m repro lint``.

Three targets:

* ``lint CASE`` — record one seed case's offload schedule (estimate mode,
  reduced grid) and lint it; ``--mode`` picks modeling/rtm/both;
* ``lint all`` — the 12 seed-case programs (6 cases x both modes);
* ``lint --script FILE`` — lint a ``!$acc`` directive script without
  running anything.

``--fail-on SEVERITY`` exits non-zero when any finding reaches the gate
(default ``error``; ``none`` always exits 0); ``--json`` emits the
machine-readable report.

``--deep`` adds the whole-program dataflow engine
(:mod:`repro.analyze.dataflow`) to the pass list — fixed-point coherence
proofs with ``DF*`` codes and event-chain witnesses — and appends a
ledger record (diagnostic + opportunity counts) so ``repro report
--check`` can flag regressions in statically-proven schedule quality.
"""

from __future__ import annotations

from repro.analyze.framework import (
    LintResult,
    Severity,
    deep_passes,
    lint_program,
    parse_severity,
)
from repro.analyze.frontend import program_from_script
from repro.utils.errors import ConfigurationError

#: reduced lint-recording grids (the directive sequence does not depend on
#: the grid size; estimate mode makes even these instant)
_SHAPES = {2: (96, 96), 3: (48, 48, 48)}

#: the seed inventory: 3 physics x 2 dimensions (x both modes = 12 programs)
_INVENTORY = (
    ("isotropic", 2),
    ("acoustic", 2),
    ("elastic", 2),
    ("isotropic", 3),
    ("acoustic", 3),
    ("elastic", 3),
)


def lint_case(
    physics: str,
    ndim: int,
    mode: str,
    nt: int = 24,
    compiler: str | None = None,
    deep: bool = False,
) -> LintResult:
    """Record one seed case at a reduced grid and lint it."""
    from repro.acc.compiler import COMPILERS
    from repro.analyze.drivers import lint_pipeline
    from repro.core.config import GPUOptions

    options = GPUOptions()
    if compiler is not None:
        try:
            options.compiler = COMPILERS[compiler]
        except KeyError:
            known = ", ".join(sorted(COMPILERS))
            raise ConfigurationError(
                f"unknown compiler '{compiler}' (expected one of: {known})"
            ) from None
    shape = _SHAPES[ndim]
    return lint_pipeline(
        physics,
        shape,
        mode,
        nt=nt,
        snap_period=4,
        options=options,
        space_order=4 if ndim == 3 else 8,
        boundary_width=8,
        name=f"{physics.upper()} {ndim}D ({mode})",
        passes=deep_passes() if deep else None,
    )


def lint_targets(args) -> list[LintResult]:
    """Resolve the CLI namespace into one or more lint results."""
    deep = bool(getattr(args, "deep", False))
    if getattr(args, "script", None):
        with open(args.script, encoding="utf-8") as fh:
            program = program_from_script(fh.read())
        program.meta = type(program.meta)(
            source="script", name=args.script,
        )
        return [lint_program(program, deep_passes() if deep else None)]
    case = getattr(args, "case", None)
    if case is None:
        raise ConfigurationError("lint needs a CASE (or 'all', or --script FILE)")
    modes = ("modeling", "rtm") if args.mode == "both" else (args.mode,)
    if case.lower() == "all":
        return [
            lint_case(physics, ndim, mode, nt=args.nt,
                      compiler=args.compiler, deep=deep)
            for physics, ndim in _INVENTORY
            for mode in ("modeling", "rtm")
        ]
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    return [
        lint_case(physics, ndim, mode, nt=args.nt,
                  compiler=args.compiler, deep=deep)
        for mode in modes
    ]


def lint_ledger_metrics(results: list[LintResult]) -> dict[str, float]:
    """The statically-proven-quality metrics a ``lint --deep`` run records:
    diagnostic counts by severity, ``DF*`` findings, and the opportunity
    pass's verified fusion/hoisting count."""
    from repro.analyze.dataflow import find_opportunities

    diags = [d for r in results for d in r.diagnostics]
    opportunities = 0
    verified = 0
    for r in results:
        report = find_opportunities(r.program)
        opportunities += len(report.opportunities)
        verified += len(report.verified())
    return {
        "lint_errors": float(sum(
            1 for d in diags if d.severity == Severity.ERROR
        )),
        "lint_warnings": float(sum(
            1 for d in diags if d.severity == Severity.WARNING
        )),
        "lint_info": float(sum(
            1 for d in diags if d.severity == Severity.INFO
        )),
        "df_findings": float(sum(
            1 for d in diags if d.rule.startswith("DF")
        )),
        "opportunities": float(opportunities),
        "verified_opportunities": float(verified),
    }


def _append_lint_ledger(args, results: list[LintResult]) -> None:
    from repro.observe.ledger import append_run, ledger_path_from_args
    from repro.observe.runlog import RunLog

    path = ledger_path_from_args(args)
    if path is None:
        return
    case = getattr(args, "case", None) or getattr(args, "script", None)
    runlog = RunLog(
        command="lint",
        case=case,
        mode=getattr(args, "mode", None),
        ranks=1,
    )
    append_run(path, runlog, lint_ledger_metrics(results))


def run_lint_command(args) -> int:
    """``python -m repro lint`` entry point (argparse namespace in)."""
    from repro.analyze.report import format_json, format_sarif, format_text

    results = lint_targets(args)
    fmt = getattr(args, "format", None) or (
        "json" if getattr(args, "json", False) else "text"
    )
    if fmt == "json":
        print(format_json(results))
    elif fmt == "sarif":
        print(format_sarif(results))
    else:
        for i, result in enumerate(results):
            if i:
                print()
            print(format_text(result))
    if getattr(args, "deep", False):
        _append_lint_ledger(args, results)
    if args.fail_on.lower() == "none":
        return 0
    threshold = parse_severity(args.fail_on)
    return 1 if any(r.fails(threshold) for r in results) else 0


__all__ = [
    "run_lint_command",
    "lint_targets",
    "lint_case",
    "lint_ledger_metrics",
]
