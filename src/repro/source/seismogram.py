"""Seismogram (shot-record) processing utilities.

The modeling driver produces raw ``(nt, nreceivers)`` float32 records
("predicts the seismograms that can be recorded by a set of sensors", paper
Section 3.1); these helpers cover the basic processing an adopter applies
before interpretation or migration: gain, normalisation, muting, picking
and resampling.
"""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


def _check(seismogram: np.ndarray) -> np.ndarray:
    a = np.asarray(seismogram)
    if a.ndim != 2:
        raise ConfigurationError(
            f"seismogram must be (nt, nreceivers), got shape {a.shape}"
        )
    return a


def agc(seismogram: np.ndarray, window: int) -> np.ndarray:
    """Automatic gain control: divide each sample by the RMS of a centred
    ``window``-sample segment of its own trace (reveals weak late
    arrivals, e.g. deep reflections, next to the strong direct wave)."""
    a = _check(seismogram).astype(np.float64)
    if window < 1 or window > a.shape[0]:
        raise ConfigurationError(f"window must be in 1..{a.shape[0]}")
    power = a**2
    kernel = np.ones(window) / window
    rms = np.sqrt(
        np.apply_along_axis(
            lambda t: np.convolve(t, kernel, mode="same"), 0, power
        )
    )
    floor = 1e-6 * (rms.max() or 1.0)
    return (a / (rms + floor)).astype(DTYPE)


def normalize_traces(seismogram: np.ndarray) -> np.ndarray:
    """Scale each trace to unit peak amplitude (dead traces stay zero)."""
    a = _check(seismogram).astype(np.float64)
    peaks = np.abs(a).max(axis=0, keepdims=True)
    peaks[peaks == 0] = 1.0
    return (a / peaks).astype(DTYPE)


def mute_direct_arrival(
    seismogram: np.ndarray,
    dt: float,
    offsets_m: np.ndarray,
    velocity: float,
    pad_s: float = 0.05,
) -> np.ndarray:
    """Zero everything before the direct arrival per trace: sample cutoff
    at ``offset / velocity + pad`` (the standard top mute before
    migration/velocity analysis)."""
    a = _check(seismogram)
    offsets = np.asarray(offsets_m, dtype=np.float64)
    if offsets.shape != (a.shape[1],):
        raise ConfigurationError(
            f"need one offset per trace ({a.shape[1]}), got {offsets.shape}"
        )
    if dt <= 0 or velocity <= 0:
        raise ConfigurationError("dt and velocity must be positive")
    out = a.astype(DTYPE).copy()
    cut = ((np.abs(offsets) / velocity + pad_s) / dt).astype(int)
    for j, c in enumerate(cut):
        out[: min(max(c, 0), a.shape[0]), j] = 0.0
    return out


def first_breaks(
    seismogram: np.ndarray, threshold: float = 0.05
) -> np.ndarray:
    """First-break picks: the first sample of each trace exceeding
    ``threshold`` of that trace's peak amplitude (-1 for dead traces)."""
    a = np.abs(_check(seismogram).astype(np.float64))
    if not 0 < threshold < 1:
        raise ConfigurationError("threshold must be in (0, 1)")
    peaks = a.max(axis=0)
    picks = np.full(a.shape[1], -1, dtype=np.int64)
    for j in range(a.shape[1]):
        if peaks[j] == 0:
            continue
        hits = np.nonzero(a[:, j] >= threshold * peaks[j])[0]
        if hits.size:
            picks[j] = int(hits[0])
    return picks


def resample(seismogram: np.ndarray, factor: int) -> np.ndarray:
    """Anti-aliased decimation in time by an integer ``factor`` (simple
    ``factor``-sample box average then take every ``factor``-th sample —
    adequate for wavefields already oversampled by the CFL bound)."""
    a = _check(seismogram).astype(np.float64)
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    if factor == 1:
        return a.astype(DTYPE)
    n_full = (a.shape[0] // factor) * factor
    trimmed = a[:n_full]
    boxed = trimmed.reshape(-1, factor, a.shape[1]).mean(axis=1)
    return boxed.astype(DTYPE)


def trace_energy(seismogram: np.ndarray) -> np.ndarray:
    """Per-trace energy ``sum_t s^2`` — a quick acquisition QC vector."""
    a = _check(seismogram).astype(np.float64)
    return np.sum(a**2, axis=0)
