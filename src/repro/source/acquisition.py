"""Acquisition geometry: receiver spreads and shots.

A :class:`Shot` bundles what one RTM migration needs: the source, the
receiver spread, and (after modeling) the recorded seismogram that the
backward phase re-injects at the receiver positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.grid import Grid
from repro.source.injection import PointSource, extract, inject
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


@dataclass
class Receivers:
    """A set of receivers given by their grid indices, shape ``(n, ndim)``."""

    indices: np.ndarray

    def __post_init__(self):
        self.indices = np.atleast_2d(np.asarray(self.indices, dtype=np.intp))
        if self.indices.size == 0:
            raise ConfigurationError("receiver set must not be empty")

    @property
    def count(self) -> int:
        return self.indices.shape[0]

    @property
    def ndim(self) -> int:
        return self.indices.shape[1]

    def record(self, field: np.ndarray) -> np.ndarray:
        """Sample the wavefield at all receivers (one time step's traces)."""
        return extract(field, self.indices)

    def inject_traces(self, field: np.ndarray, traces: np.ndarray, scale: float = 1.0) -> None:
        """Add one time step's trace amplitudes at the receiver positions —
        the receiver injection of the RTM backward phase."""
        traces = np.asarray(traces)
        if traces.shape != (self.count,):
            raise ConfigurationError(
                f"expected {self.count} trace samples, got shape {traces.shape}"
            )
        inject(field, self.indices, traces, scale=scale)


def line_receivers(grid: Grid, depth_index: int, stride: int = 1, margin: int = 0) -> Receivers:
    """Receivers along a horizontal line (2-D) or plane diagonal line (3-D)
    at constant depth ``depth_index``, every ``stride`` grid points, keeping
    ``margin`` points clear of the lateral edges."""
    if not 0 <= depth_index < grid.shape[0]:
        raise ConfigurationError(
            f"depth_index {depth_index} outside axis of {grid.shape[0]} points"
        )
    xs = np.arange(margin, grid.shape[1] - margin, stride, dtype=np.intp)
    if xs.size == 0:
        raise ConfigurationError("margin/stride leave no receivers")
    if grid.ndim == 2:
        idx = np.stack([np.full_like(xs, depth_index), xs], axis=1)
    else:
        y_mid = grid.shape[2] // 2
        idx = np.stack(
            [np.full_like(xs, depth_index), xs, np.full_like(xs, y_mid)], axis=1
        )
    return Receivers(idx)


def grid_receivers(grid: Grid, depth_index: int, stride: int = 4, margin: int = 0) -> Receivers:
    """A full areal spread at constant depth (3-D only): receivers on an
    ``stride``-decimated (x, y) lattice."""
    if grid.ndim != 3:
        raise ConfigurationError("grid_receivers requires a 3-D grid")
    xs = np.arange(margin, grid.shape[1] - margin, stride, dtype=np.intp)
    ys = np.arange(margin, grid.shape[2] - margin, stride, dtype=np.intp)
    if xs.size == 0 or ys.size == 0:
        raise ConfigurationError("margin/stride leave no receivers")
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    n = gx.size
    idx = np.stack(
        [np.full(n, depth_index, dtype=np.intp), gx.ravel(), gy.ravel()], axis=1
    )
    return Receivers(idx)


@dataclass
class Shot:
    """One experiment: a source, a receiver spread, and (once modelled) the
    recorded data of shape ``(nt, nreceivers)``."""

    source: PointSource
    receivers: Receivers
    data: np.ndarray | None = field(default=None)

    def allocate_data(self, nt: int) -> np.ndarray:
        """Allocate the seismogram buffer for ``nt`` time steps."""
        self.data = np.zeros((nt, self.receivers.count), dtype=DTYPE)
        return self.data

    def record_step(self, step: int, wavefield: np.ndarray) -> None:
        """Record one time step into the seismogram."""
        if self.data is None:
            raise ConfigurationError("call allocate_data(nt) before recording")
        self.data[step, :] = self.receivers.record(wavefield)
