"""Source time functions.

The Ricker wavelet (negative-normalised second derivative of a Gaussian) is
the standard source in seismic modeling; its peak frequency controls the
``snap_period`` of Algorithm 1 ("the snap_period value depends on the maximum
frequency used in the attached velocity model").
"""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


def _time_axis(nt: int, dt: float) -> np.ndarray:
    if nt < 1:
        raise ConfigurationError("nt must be >= 1")
    if dt <= 0:
        raise ConfigurationError("dt must be positive")
    return np.arange(nt, dtype=np.float64) * dt


def ricker(nt: int, dt: float, peak_freq: float, delay: float | None = None) -> np.ndarray:
    """Ricker wavelet sampled at ``nt`` steps of ``dt`` seconds.

    Parameters
    ----------
    peak_freq:
        Peak (dominant) frequency in Hz.
    delay:
        Time of the wavelet peak in seconds; defaults to ``1.5/peak_freq``
        so the wavelet starts (numerically) at zero.
    """
    if peak_freq <= 0:
        raise ConfigurationError("peak_freq must be positive")
    t = _time_axis(nt, dt)
    t0 = 1.5 / peak_freq if delay is None else float(delay)
    arg = (np.pi * peak_freq * (t - t0)) ** 2
    w = (1.0 - 2.0 * arg) * np.exp(-arg)
    return w.astype(DTYPE)


def gaussian(nt: int, dt: float, peak_freq: float, delay: float | None = None) -> np.ndarray:
    """Gaussian pulse with spectral width matched to ``peak_freq``."""
    if peak_freq <= 0:
        raise ConfigurationError("peak_freq must be positive")
    t = _time_axis(nt, dt)
    t0 = 1.5 / peak_freq if delay is None else float(delay)
    arg = (np.pi * peak_freq * (t - t0)) ** 2
    return np.exp(-arg).astype(DTYPE)


def gaussian_derivative(nt: int, dt: float, peak_freq: float, delay: float | None = None) -> np.ndarray:
    """First derivative of a Gaussian — a zero-mean pulse used for velocity
    sources in the first-order systems."""
    if peak_freq <= 0:
        raise ConfigurationError("peak_freq must be positive")
    t = _time_axis(nt, dt)
    t0 = 1.5 / peak_freq if delay is None else float(delay)
    a = (np.pi * peak_freq) ** 2
    w = -2.0 * a * (t - t0) * np.exp(-a * (t - t0) ** 2)
    peak = np.max(np.abs(w))
    if peak > 0:
        w = w / peak
    return w.astype(DTYPE)


def integrated_ricker(nt: int, dt: float, peak_freq: float, delay: float | None = None) -> np.ndarray:
    """Running time-integral of the Ricker wavelet.

    Equation 2 of the paper injects :math:`\\partial_t^{-1} f(x_s, t)` into
    the pressure update of the variable-density acoustic system; this is that
    antiderivative, computed by cumulative trapezoid.
    """
    w = ricker(nt, dt, peak_freq, delay).astype(np.float64)
    out = np.concatenate(([0.0], np.cumsum((w[1:] + w[:-1]) * 0.5 * dt)))
    return out.astype(DTYPE)
