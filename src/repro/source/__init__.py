"""Seismic sources, receivers and acquisition geometry."""

from repro.source.wavelets import (
    ricker,
    gaussian,
    gaussian_derivative,
    integrated_ricker,
)
from repro.source.injection import PointSource, inject, extract
from repro.source.acquisition import Receivers, Shot, line_receivers, grid_receivers
from repro.source.seismogram import (
    agc,
    normalize_traces,
    mute_direct_arrival,
    first_breaks,
    resample,
    trace_energy,
)

__all__ = [
    "ricker",
    "gaussian",
    "gaussian_derivative",
    "integrated_ricker",
    "PointSource",
    "inject",
    "extract",
    "Receivers",
    "Shot",
    "line_receivers",
    "grid_receivers",
    "agc",
    "normalize_traces",
    "mute_direct_arrival",
    "first_breaks",
    "resample",
    "trace_energy",
]
