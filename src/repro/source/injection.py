"""Point-source injection and receiver extraction/injection.

The paper ports both injections to the GPU (Section 5.4): source injection is
a single-point update with ~0.04 % GPU utilization; receiver injection loops
over all receivers and reaches ~26 % after the receiver loop is inlined into
one kernel. The same functions serve both the host path and the device path
(the :mod:`repro.acc` runtime executes them against device-resident arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.grid.grid import Grid
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class PointSource:
    """A point source: grid index + source time function.

    ``wavelet[n]`` is the source amplitude at time step ``n``.
    """

    index: tuple[int, ...]
    wavelet: np.ndarray

    @staticmethod
    def at_coords(grid: Grid, coords: Sequence[float], wavelet: np.ndarray) -> "PointSource":
        """Place a source at physical coordinates (metres), snapping to the
        nearest grid point."""
        return PointSource(grid.nearest_index(coords), np.asarray(wavelet))

    @staticmethod
    def at_center(grid: Grid, wavelet: np.ndarray, depth_index: int | None = None) -> "PointSource":
        """Source at the horizontal centre of the grid; ``depth_index``
        defaults to the vertical centre."""
        idx = list(grid.center_index())
        if depth_index is not None:
            if not 0 <= depth_index < grid.shape[0]:
                raise ConfigurationError(
                    f"depth_index {depth_index} outside axis of {grid.shape[0]} points"
                )
            idx[0] = int(depth_index)
        return PointSource(tuple(idx), np.asarray(wavelet))

    def amplitude(self, step: int) -> float:
        """Amplitude at time step ``step`` (0 beyond the wavelet length)."""
        if 0 <= step < len(self.wavelet):
            return float(self.wavelet[step])
        return 0.0


def inject(
    field: np.ndarray,
    indices: np.ndarray,
    amplitudes: np.ndarray | float,
    scale: float = 1.0,
) -> None:
    """Add ``scale * amplitudes`` into ``field`` at ``indices``.

    ``indices`` is an ``(n, ndim)`` integer array (one row per injection
    point). Duplicate indices accumulate, matching the physical superposition
    of collocated receivers — this uses ``np.add.at`` rather than fancy-index
    assignment, which would silently drop duplicates.
    """
    indices = np.asarray(indices)
    if indices.ndim == 1:
        indices = indices[None, :]
    if indices.shape[1] != field.ndim:
        raise ConfigurationError(
            f"indices are {indices.shape[1]}-D but field is {field.ndim}-D"
        )
    amp = np.broadcast_to(
        np.asarray(amplitudes, dtype=field.dtype), (indices.shape[0],)
    )
    np.add.at(field, tuple(indices.T), (scale * amp).astype(field.dtype))


def extract(field: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Sample ``field`` at ``indices`` — receiver recording."""
    indices = np.asarray(indices)
    if indices.ndim == 1:
        indices = indices[None, :]
    if indices.shape[1] != field.ndim:
        raise ConfigurationError(
            f"indices are {indices.shape[1]}-D but field is {field.ndim}-D"
        )
    return field[tuple(indices.T)]
