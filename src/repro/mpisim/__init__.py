"""MPI-like substrate: in-process message passing, halo exchange, and the
CPU-cluster cost model behind the paper's full-socket reference times."""

from repro.mpisim.comm import SimMPI, RankComm, Request, MessageStats
from repro.mpisim.halo import HaloExchanger, exchange_halos_once
from repro.mpisim.cluster import (
    CPUSocketSpec,
    ClusterSpec,
    IBM_CLUSTER,
    CRAY_XC30,
    CLUSTERS,
    ClusterCostModel,
)

__all__ = [
    "SimMPI",
    "RankComm",
    "Request",
    "MessageStats",
    "HaloExchanger",
    "exchange_halos_once",
    "CPUSocketSpec",
    "ClusterSpec",
    "IBM_CLUSTER",
    "CRAY_XC30",
    "CLUSTERS",
    "ClusterCostModel",
]
