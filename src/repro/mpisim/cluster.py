"""CPU-cluster cost model — the paper's full-socket MPI reference.

"The reference CPU total time is the time to process the entire domain while
using sub-domain decomposition ... given by running a full socket MPI
implementation" — 10 Ivy Bridge cores on the Cray XC30, 8 Westmere cores on
the IBM cluster (paper Tables 1-2).

The model is the same compulsory-traffic roofline as the GPU side
(:mod:`repro.gpusim.kernelmodel`) with CPU efficiencies, plus two
communication terms:

* per-step halo exchange of the decomposed wavefields (intra-node via
  shared memory);
* RTM snapshot traffic: the decomposed source wavefield must be gathered
  and spilled every ``snap_period`` in the forward phase and read back in
  the backward phase. This rides the cluster's interconnect/storage path —
  fast on the XC30 ("novel intercommunications technology ... makes our CPU
  implementation run much faster on CRAY"), slow on the older IBM cluster —
  and is what makes the IBM RTM speedups so large (10.2x acoustic 3-D)
  while CRAY's stay near 1.3x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB

#: fraction of peak FLOP throughput tuned, *vectorized* Fortran sustains
CPU_COMPUTE_EFFICIENCY = 0.40
#: fraction of peak socket bandwidth STREAM-like stencil code sustains
CPU_MEM_EFFICIENCY = 0.80
#: address-stream knee of CPU auto-vectorization: bodies indexing more than
#: this many distinct arrays defeat the vectorizer and run near-scalar
#: (the staggered C-PML kernels), while simple sweeps vectorize fully
CPU_SIMD_STREAM_KNEE = 6
#: how fast compute efficiency collapses beyond the knee
CPU_SIMD_STREAM_EXPONENT = 2.5
#: parallel efficiency loss of the full-socket MPI run (load imbalance,
#: shared-bandwidth contention)
CPU_PARALLEL_EFFICIENCY = 0.90
#: intra-node (shared-memory) MPI aggregate bandwidth (exchanges proceed
#: pairwise in parallel through the shared L3/DRAM) and per-message latency
SHM_BANDWIDTH = 40.0 * GB
SHM_LATENCY = 1.0e-6
#: sustained-bandwidth quality of the production Fortran per formulation:
#: the isotropic sweep is STREAM-like; the staggered C-PML codes interleave
#: many fields and sustain a fraction of it (calibrated against the paper's
#: per-formulation kernel speedups)
CPU_CODE_QUALITY = (("elastic", 0.45), ("acoustic", 0.70), ("iso", 1.0))


def _code_quality(kernel_name: str) -> float:
    for prefix, q in CPU_CODE_QUALITY:
        if kernel_name.startswith(prefix):
            return q
    return 1.0


@dataclass(frozen=True)
class CPUSocketSpec:
    """One CPU socket (paper Table 1)."""

    name: str
    cores: int
    clock_ghz: float
    #: single-precision flops per core per cycle (SIMD width x ports)
    flops_per_cycle_sp: int
    #: sustained socket memory bandwidth (bytes/s)
    mem_bandwidth_bytes: float

    @property
    def peak_gflops_per_core(self) -> float:
        return self.clock_ghz * self.flops_per_cycle_sp

    @property
    def peak_gflops(self) -> float:
        return self.cores * self.peak_gflops_per_core


#: Intel Xeon E5-2680 v2 (Ivy Bridge, 10 cores @ 2.8 GHz, AVX) — Cray XC30.
IVY_BRIDGE_E5_2680V2 = CPUSocketSpec(
    name="Xeon E5-2680 v2",
    cores=10,
    clock_ghz=2.8,
    flops_per_cycle_sp=16,
    mem_bandwidth_bytes=42.0 * GB,
)

#: Intel Xeon E5640 (Westmere, 4 cores @ 2.8 GHz fide the paper, SSE) — IBM.
WESTMERE_E5640 = CPUSocketSpec(
    name="Xeon E5640",
    cores=4,
    clock_ghz=2.8,
    flops_per_cycle_sp=8,
    mem_bandwidth_bytes=9.0 * GB,
)


@dataclass(frozen=True)
class ClusterSpec:
    """One evaluation platform's CPU side.

    ``mpi_cores`` is the paper's "full socket" count (10 on CRAY — one
    socket; 8 on IBM — both quad-core sockets). ``sockets_used`` scales the
    memory bandwidth accordingly. ``snapshot_bandwidth`` is the effective
    rate of gathering + spilling a decomposed snapshot through the
    interconnect/storage path.
    """

    name: str
    socket: CPUSocketSpec
    mpi_cores: int
    sockets_used: int
    snapshot_bandwidth: float
    interconnect_latency: float
    #: slowdown of the CPU *backward* (RTM) kernels per formulation. The
    #: paper's IBM acoustic RTM reference is anomalously slow (kernel
    #: speedups of 7.9x/10.8x vs 1.2x/2.3x for the same kernels in
    #: modeling); the authors attribute the platform gap to "the old
    #: interconnection technology provided by the IBM cluster". We carry
    #: the anomaly as a measured input rather than invent a mechanism.
    rtm_backward_quality: tuple[tuple[str, float], ...] = ()

    def backward_quality(self, physics: str) -> float:
        for prefix, q in self.rtm_backward_quality:
            if physics.startswith(prefix):
                return q
        return 1.0

    @property
    def peak_gflops(self) -> float:
        return self.mpi_cores * self.socket.peak_gflops_per_core

    @property
    def mem_bandwidth_bytes(self) -> float:
        return self.sockets_used * self.socket.mem_bandwidth_bytes


#: Cray XC30: one full 10-core Ivy Bridge socket, Aries interconnect +
#: Lustre — snapshots move fast.
CRAY_XC30 = ClusterSpec(
    name="CRAY XC30",
    socket=IVY_BRIDGE_E5_2680V2,
    mpi_cores=10,
    sockets_used=1,
    snapshot_bandwidth=6.0 * GB,
    interconnect_latency=1.5e-6,
)

#: IBM cluster: both Westmere sockets (8 cores), previous-generation
#: interconnect — snapshot gather/spill is the bottleneck.
IBM_CLUSTER = ClusterSpec(
    name="IBM",
    socket=WESTMERE_E5640,
    mpi_cores=8,
    sockets_used=2,
    snapshot_bandwidth=0.15 * GB,
    interconnect_latency=8.0e-6,
    rtm_backward_quality=(("acoustic", 0.14),),
)

CLUSTERS = {"CRAY": CRAY_XC30, "IBM": IBM_CLUSTER, "cray": CRAY_XC30, "ibm": IBM_CLUSTER}


class ClusterCostModel:
    """Analytic time model of the full-socket MPI reference run."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def kernel_time(self, workload: KernelWorkload) -> float:
        """Seconds the full socket spends on one kernel sweep.

        Compute throughput degrades past the vectorization knee: bodies
        with many address streams (the staggered C-PML updates) run
        near-scalar, which is what makes the elastic cases compute-bound on
        the CPU — and hence the paper's best GPU speedups.
        """
        dram_bytes = 4.0 * (workload.address_streams + workload.writes_per_point)
        dram_bytes *= workload.points
        quality = _code_quality(workload.name)
        mem_time = dram_bytes / (
            self.spec.mem_bandwidth_bytes * CPU_MEM_EFFICIENCY * quality
        )
        streams = max(1, workload.address_streams)
        simd_eff = min(
            1.0, (CPU_SIMD_STREAM_KNEE / streams) ** CPU_SIMD_STREAM_EXPONENT
        )
        flops = workload.flops_per_point * workload.points
        comp_time = flops / (
            self.spec.peak_gflops * 1e9 * CPU_COMPUTE_EFFICIENCY * simd_eff
        )
        return max(mem_time, comp_time) / CPU_PARALLEL_EFFICIENCY

    def step_time(self, workloads: list[KernelWorkload]) -> float:
        """One time step's compute (all kernels)."""
        return sum(self.kernel_time(w) for w in workloads)

    # ------------------------------------------------------------------
    def halo_time(self, halo_bytes: int, messages: int) -> float:
        """One halo swap over shared memory within the node."""
        if halo_bytes < 0 or messages < 0:
            raise ConfigurationError("halo bytes/messages must be >= 0")
        return messages * SHM_LATENCY + halo_bytes / SHM_BANDWIDTH

    def snapshot_time(self, nbytes: int) -> float:
        """Gather + spill (or read + scatter) one snapshot of ``nbytes``
        through the interconnect/storage path."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be >= 0")
        return (
            self.spec.interconnect_latency * self.spec.mpi_cores
            + nbytes / self.spec.snapshot_bandwidth
        )

    def injection_time(self, npoints: int) -> float:
        """Source/receiver injection: tiny serial work + one broadcast."""
        return 2e-7 * max(1, npoints) + self.spec.interconnect_latency
