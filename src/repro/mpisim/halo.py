"""Ghost-node (halo) exchange over the simulated MPI world.

Implements the paper's Algorithm 1 ``exchange_boundaries`` step: every rank
posts nonblocking sends of its owned cells adjacent to each face and
nonblocking receives into the matching ghost slabs, then drains them with
``waitany``. Run as a BSP superstep (all sends, then all receives), which
the eager-buffered :mod:`repro.mpisim.comm` executes deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.grid.decomposition import CartesianDecomposition
from repro.mpisim.cluster import SHM_BANDWIDTH, SHM_LATENCY
from repro.mpisim.comm import RankComm, Request, SimMPI
from repro.trace.tracer import Tracer
from repro.utils.errors import CommunicationError
from repro.utils.timer import SimClock


def _face_tag(axis: int, side: str, field_id: int) -> int:
    """Unique tag per (axis, direction, field): receives must match the
    sender's view of the face (our 'lo' send arrives at the peer's 'hi'
    ghost)."""
    return field_id * 100 + axis * 10 + (0 if side == "lo" else 1)


class HaloExchanger:
    """Exchanges halos of one decomposed field set.

    Parameters
    ----------
    decomp:
        The Cartesian decomposition (geometry + neighbour map).
    mpi:
        The message-passing world; must have ``decomp.nranks`` ranks.
    tracer:
        Optional trace sink. When given, each completed face receive is
        emitted as a span on the ``rank:<r>`` track of the ``mpi`` process
        (modelled duration: link latency + bytes/bandwidth) and the
        ``halo.bytes`` / ``halo.messages`` counters accumulate.
    clock:
        Timeline the modelled exchange durations advance; pass the device's
        :class:`~repro.utils.timer.SimClock` to place halo spans on the same
        time axis as the kernels. A private clock is used when omitted.
    latency / bandwidth:
        Link cost model; defaults to the intra-node (shared-memory MPI)
        figures of :mod:`repro.mpisim.cluster`.
    sanitizer:
        Optional coherence sanitizer (duck-typed:
        ``on_halo_geometry(decomp)``, ``on_halo_send(rank, name, axis,
        side, nbytes)`` before each face send and ``on_halo_recv(rank,
        name, axis, side, nbytes)`` after each ghost slab lands). See
        :mod:`repro.sanitize`.
    """

    def __init__(
        self,
        decomp: CartesianDecomposition,
        mpi: SimMPI,
        tracer: Tracer | None = None,
        clock: SimClock | None = None,
        latency: float = SHM_LATENCY,
        bandwidth: float = SHM_BANDWIDTH,
        sanitizer: object | None = None,
    ):
        if mpi.nranks != decomp.nranks:
            raise CommunicationError(
                f"world has {mpi.nranks} ranks but decomposition needs {decomp.nranks}"
            )
        self.decomp = decomp
        self.mpi = mpi
        self.comms: list[RankComm] = mpi.comms()
        self.tracer = tracer
        self.clock = clock if clock is not None else SimClock()
        self.latency = latency
        self.bandwidth = bandwidth
        self.sanitizer = sanitizer
        if tracer is not None and mpi.tracer is None:
            mpi.tracer = tracer
        if sanitizer is not None:
            sanitizer.on_halo_geometry(decomp)

    # ------------------------------------------------------------------
    def exchange(self, local_fields: list[dict[str, np.ndarray]]) -> None:
        """One halo swap of every named field on every rank.

        ``local_fields[rank]`` maps field name -> local array (owned +
        halo). All ranks must carry the same field names.
        """
        if len(local_fields) != self.decomp.nranks:
            raise CommunicationError(
                f"expected {self.decomp.nranks} rank field sets, got {len(local_fields)}"
            )
        names = sorted(local_fields[0].keys())
        for fields in local_fields[1:]:
            if sorted(fields.keys()) != names:
                raise CommunicationError("ranks disagree on field names")
        # One superstep per axis: sends of axis k happen after the receives
        # of axis k-1, so edge/corner ghost regions (which ride along in the
        # full-width face slabs) carry already-updated data — the standard
        # sequenced halo exchange.
        for axis in range(self.decomp.grid.ndim):
            for rank, fields in enumerate(local_fields):
                sub = self.decomp.subdomain(rank)
                comm = self.comms[rank]
                for fid, name in enumerate(names):
                    arr = fields[name]
                    for ax, side in sub.halo.exchange_faces():
                        if ax != axis:
                            continue
                        peer = self.decomp.neighbour(rank, axis, side)
                        assert peer is not None
                        sl = self.decomp.send_slices(axis, side, arr.shape)
                        face = np.ascontiguousarray(arr[sl])
                        if self.sanitizer is not None:
                            self.sanitizer.on_halo_send(
                                rank, name, axis, side, int(face.nbytes)
                            )
                        comm.isend(face, dest=peer, tag=_face_tag(axis, side, fid))
                        if self.tracer is not None:
                            self.tracer.instant(
                                f"isend:{name}", process="mpi",
                                track=f"rank:{rank}", cat="halo",
                                axis=axis, side=side, dest=peer,
                                bytes=int(face.nbytes),
                            )
            for rank, fields in enumerate(local_fields):
                sub = self.decomp.subdomain(rank)
                comm = self.comms[rank]
                pending: list[Request] = []
                targets: list[tuple[np.ndarray, tuple[slice, ...], np.ndarray]] = []
                labels: list[tuple[str, str]] = []
                for fid, name in enumerate(names):
                    arr = fields[name]
                    for ax, side in sub.halo.exchange_faces():
                        if ax != axis:
                            continue
                        peer = self.decomp.neighbour(rank, axis, side)
                        assert peer is not None
                        sl = self.decomp.recv_slices(axis, side, arr.shape)
                        buf = np.empty(arr[sl].shape, dtype=arr.dtype)
                        # a peer's send from its opposite face carries our tag
                        opposite = "hi" if side == "lo" else "lo"
                        pending.append(
                            comm.irecv(buf, source=peer, tag=_face_tag(axis, opposite, fid))
                        )
                        targets.append((arr, sl, buf))
                        labels.append((name, side))
                remaining = list(range(len(pending)))
                while remaining:
                    i = RankComm.waitany([pending[j] for j in remaining])
                    idx = remaining.pop(i)
                    arr, sl, buf = targets[idx]
                    arr[sl] = buf
                    if self.sanitizer is not None:
                        name, side = labels[idx]
                        self.sanitizer.on_halo_recv(
                            rank, name, axis, side, int(buf.nbytes)
                        )
                    self._trace_recv(rank, axis, pending[idx], buf.nbytes)
        # Every posted receive has drained, so a clean exchange leaves the
        # world empty. Leftover traffic means a message nobody expected — a
        # duplicated send (injected or real) — and silently consuming it on
        # the *next* exchange would hand a stale face to a future timestep,
        # so fail loudly here where recovery can flush and retry.
        leftover = self.mpi.pending_messages()
        if leftover:
            raise CommunicationError(
                f"halo exchange finished with {leftover} unexpected message(s) "
                "still buffered (duplicated send?)"
            )

    # ------------------------------------------------------------------
    def _trace_recv(self, rank: int, axis: int, req: Request, nbytes: int) -> None:
        """Account one completed face receive on the trace timeline."""
        if self.tracer is None:
            return
        duration = self.latency + nbytes / self.bandwidth
        start = self.clock.now
        self.clock.advance(duration, "halo")
        self.tracer.emit(
            "halo.recv", start, start + duration,
            process="mpi", track=f"rank:{rank}", cat="halo",
            axis=axis, source=req.peer, bytes=int(nbytes),
        )
        m = self.tracer.metrics
        m.counter("halo.messages").add()
        m.counter("halo.bytes").add(int(nbytes))

    # ------------------------------------------------------------------
    def bytes_per_exchange(self, nfields: int, itemsize: int = 4) -> int:
        """Total bytes crossing rank boundaries per swap of ``nfields``."""
        return sum(
            self.decomp.face_bytes(rank, itemsize) for rank in range(self.decomp.nranks)
        ) * nfields


def exchange_halos_once(
    decomp: CartesianDecomposition, locals_: list[np.ndarray]
) -> None:
    """Convenience single-field exchange (builds a throwaway world)."""
    mpi = SimMPI(decomp.nranks)
    HaloExchanger(decomp, mpi).exchange([{"f": a} for a in locals_])
