"""In-process message passing with MPI semantics.

Ranks run sequentially inside one Python process (deterministic, no
threads); messages are buffered eagerly, so the usual seismic-code pattern —
post all ``MPI_ISEND``/``MPI_IRECV``, then drain with ``MPI_WAITANY`` (the
paper's Algorithm 1 wording) — works when the driver executes each rank's
send phase before any rank's wait phase, which is exactly what the
:class:`~repro.mpisim.halo.HaloExchanger` superstep does.

Buffers follow the mpi4py convention for numpy arrays: sends copy out of the
given array, receives land into a caller-provided buffer of matching size
and dtype.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.trace.tracer import Tracer
from repro.utils.errors import CommunicationError


@dataclass
class MessageStats:
    """Aggregate traffic counters (consumed by the cluster cost model and
    the tests)."""

    messages: int = 0
    bytes_sent: int = 0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += int(nbytes)


class Request:
    """Handle for a nonblocking operation.

    Send requests complete immediately (eager buffering). Receive requests
    complete when a matching message is popped from the mailbox by
    :meth:`wait` / :meth:`test`.
    """

    def __init__(
        self,
        mpi: "SimMPI",
        kind: str,
        rank: int,
        peer: int,
        tag: int,
        buf: np.ndarray | None = None,
    ):
        self._mpi = mpi
        self.kind = kind
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self._buf = buf
        self.done = kind == "send"

    def test(self) -> bool:
        """Nonblocking completion check; receives complete if a matching
        message is queued."""
        if self.done:
            return True
        key = (self.peer, self.rank, self.tag)
        queue = self._mpi._mailbox.get(key)
        if queue:
            msg = queue.popleft()
            self._deliver(msg)
            self.done = True
        return self.done

    def wait(self) -> None:
        """Complete the operation; raises on guaranteed deadlock (nothing
        queued and ranks are sequential, so nothing can ever arrive)."""
        if self.test():
            return
        raise CommunicationError(
            f"irecv(source={self.peer}, tag={self.tag}) on rank {self.rank} "
            "would deadlock: no matching message buffered"
        )

    def _deliver(self, msg: np.ndarray) -> None:
        assert self._buf is not None
        if msg.size != self._buf.size:
            raise CommunicationError(
                f"message size {msg.size} does not match receive buffer "
                f"{self._buf.size} (rank {self.rank} <- {self.peer}, tag {self.tag})"
            )
        self._buf.ravel()[:] = msg.ravel()
        obs = self._mpi.observer
        if obs is not None:
            obs.on_recv(self.rank, self.peer, self.tag, int(msg.nbytes))


@dataclass
class SimMPI:
    """The 'world': mailboxes shared by all ranks."""

    nranks: int
    _mailbox: dict[tuple[int, int, int], deque] = field(default_factory=dict)
    stats: MessageStats = field(default_factory=MessageStats)
    #: optional trace sink; when set, every send also bumps the
    #: ``mpi.messages`` / ``mpi.bytes`` metrics of the attached registry
    tracer: Tracer | None = None
    #: optional message observer (duck-typed: ``on_isend(rank, dest, tag,
    #: nbytes)`` / ``on_recv(rank, source, tag, nbytes)``) — the coherence
    #: sanitizer hangs its cross-rank happens-before edges here
    observer: object | None = None
    #: optional fault injector (duck-typed: ``on_message(rank, dest, tag,
    #: nbytes) -> 'deliver'|'drop'|'duplicate'|'delay'``) consulted by every
    #: send — the resilience layer's mpi-drop/dup/delay faults
    injector: object | None = None
    #: messages held back by a 'delay' verdict: they missed their superstep
    #: (the receiver starves exactly like a drop) and surface only if a
    #: later receive matches before :meth:`flush` clears them
    _delayed: list = field(default_factory=list)

    def __post_init__(self):
        if self.nranks < 1:
            raise CommunicationError("nranks must be >= 1")

    def comm(self, rank: int) -> "RankComm":
        """The communicator handle for ``rank``."""
        if not 0 <= rank < self.nranks:
            raise CommunicationError(f"rank {rank} outside 0..{self.nranks - 1}")
        return RankComm(self, rank)

    def comms(self) -> list["RankComm"]:
        return [self.comm(r) for r in range(self.nranks)]

    def pending_messages(self) -> int:
        return sum(len(q) for q in self._mailbox.values())

    def delayed_messages(self) -> int:
        """Messages held back by an injected ``mpi-delay`` fault."""
        return len(self._delayed)

    def flush(self) -> int:
        """Drop every buffered and delayed message — the recovery layer's
        world reset before retrying a failed exchange (ghost slabs are
        rewritten wholesale by the retry, so discarding in-flight traffic
        is safe). Returns how many messages were discarded."""
        n = self.pending_messages() + len(self._delayed)
        self._mailbox.clear()
        self._delayed.clear()
        return n


class RankComm:
    """Per-rank communicator (the ``MPI_COMM_WORLD`` view of one rank)."""

    def __init__(self, mpi: SimMPI, rank: int):
        self._mpi = mpi
        self.rank = rank

    @property
    def size(self) -> int:
        return self._mpi.nranks

    # ------------------------------------------------------------------
    def isend(self, data: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking standard send (eagerly buffered, like MPI_ISEND of
        small ghost faces)."""
        if not 0 <= dest < self.size:
            raise CommunicationError(f"isend dest {dest} outside 0..{self.size - 1}")
        if dest == self.rank:
            raise CommunicationError("self-sends are not supported")
        key = (self.rank, dest, int(tag))
        action = "deliver"
        if self._mpi.injector is not None:
            action = self._mpi.injector.on_message(
                self.rank, dest, int(tag), int(data.nbytes)
            )
        if action == "drop":
            pass  # lost in flight: the matching receive starves
        elif action == "delay":
            # held past its superstep: the receive starves now; the copy
            # lingers until a recovery flush() discards it
            self._mpi._delayed.append((key, np.array(data, copy=True)))
        else:
            queue = self._mpi._mailbox.setdefault(key, deque())
            queue.append(np.array(data, copy=True))
            if action == "duplicate":
                queue.append(np.array(data, copy=True))
        self._mpi.stats.record(data.nbytes)
        if self._mpi.tracer is not None:
            m = self._mpi.tracer.metrics
            m.counter("mpi.messages").add()
            m.counter("mpi.bytes").add(int(data.nbytes))
        if self._mpi.observer is not None:
            self._mpi.observer.on_isend(self.rank, dest, int(tag), int(data.nbytes))
        return Request(self._mpi, "send", self.rank, dest, int(tag))

    def irecv(self, buf: np.ndarray, source: int, tag: int = 0) -> Request:
        """Nonblocking receive into ``buf``."""
        if not 0 <= source < self.size:
            raise CommunicationError(f"irecv source {source} outside 0..{self.size - 1}")
        if not isinstance(buf, np.ndarray):
            raise CommunicationError("irecv needs a numpy buffer")
        return Request(self._mpi, "recv", self.rank, source, int(tag), buf)

    # ------------------------------------------------------------------
    @staticmethod
    def waitany(requests: list[Request]) -> int:
        """Complete one pending request, returning its index — the paper's
        'corresponding number of MPI_WAITANY calls' loop."""
        for i, req in enumerate(requests):
            if not req.done and req.test():
                return i
        for i, req in enumerate(requests):
            if not req.done:
                req.wait()  # raises with a deadlock diagnosis
                return i
        raise CommunicationError("waitany called with all requests complete")

    @staticmethod
    def waitall(requests: list[Request]) -> None:
        for req in requests:
            req.wait()

    # ------------------------------------------------------------------
    def allreduce_sum(self, value: float, store: dict) -> None:
        """Contribute to a sum reduction; the driver reads
        ``store['sum']`` after all ranks contributed (sequential-rank
        equivalent of MPI_ALLREDUCE)."""
        store["sum"] = store.get("sum", 0.0) + value
        store.setdefault("count", 0)
        store["count"] += 1
