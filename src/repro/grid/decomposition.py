"""Cartesian domain decomposition with ghost (halo) layers.

The paper's CPU reference "is based on domain decomposition where each domain
may be divided into sub-domains mapped onto several hosts", exchanging ghost
nodes whose thickness "is determined by the stencil used to solve the wave
equation" (radius 4 for the 8-wide operators). This module computes the
geometry of that decomposition; the actual message passing lives in
:mod:`repro.mpisim`.

Terminology
-----------
owned region
    The grid points a rank updates.
local array
    owned region + ``halo`` ghost points on each side that has a neighbour
    (global domain edges get ghost layers too so every local array has a
    uniform border; edge ghosts are filled by the boundary condition rather
    than by exchange).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.grid.grid import Grid
from repro.utils.errors import ConfigurationError


def best_dims(nranks: int, ndim: int) -> tuple[int, ...]:
    """Factor ``nranks`` into an ``ndim``-tuple of factors as close to each
    other as possible — the equivalent of ``MPI_Dims_create``.

    The factors are returned largest-first, matching MPICH behaviour.
    """
    if nranks < 1:
        raise ConfigurationError("nranks must be >= 1")
    if ndim < 1:
        raise ConfigurationError("ndim must be >= 1")
    dims = [1] * ndim
    remaining = nranks
    # Greedily peel off the largest prime factor onto the currently smallest
    # dimension, then sort; this reproduces balanced MPI dims for the sizes
    # we care about (small rank counts).
    primes: list[int] = []
    n = remaining
    p = 2
    while p * p <= n:
        while n % p == 0:
            primes.append(p)
            n //= p
        p += 1
    if n > 1:
        primes.append(n)
    for prime in sorted(primes, reverse=True):
        dims.sort()
        dims[0] *= prime
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class HaloSpec:
    """Ghost-layer description for one rank.

    ``lo[i]``/``hi[i]`` are True when the rank has a neighbour on the
    low/high side of axis ``i`` (i.e. the ghost layer there is filled by
    exchange, not by the physical boundary condition).
    """

    width: int
    lo: tuple[bool, ...]
    hi: tuple[bool, ...]

    def exchange_faces(self) -> list[tuple[int, str]]:
        """All (axis, side) pairs that require a message exchange."""
        faces = []
        for ax in range(len(self.lo)):
            if self.lo[ax]:
                faces.append((ax, "lo"))
            if self.hi[ax]:
                faces.append((ax, "hi"))
        return faces


@dataclass(frozen=True)
class Subdomain:
    """One rank's portion of the global grid.

    Attributes
    ----------
    rank:
        Linear rank id (C order over ``dims``).
    coords:
        Cartesian coordinates of the rank in the process grid.
    owned:
        Slices of the *global* array this rank owns.
    local_grid:
        :class:`~repro.grid.grid.Grid` covering the local array
        (owned + halo border).
    halo:
        :class:`HaloSpec` for this rank.
    """

    rank: int
    coords: tuple[int, ...]
    owned: tuple[slice, ...]
    local_grid: Grid
    halo: HaloSpec

    @property
    def owned_shape(self) -> tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.owned)

    def interior(self) -> tuple[slice, ...]:
        """Slices of the *local* array corresponding to the owned region."""
        h = self.halo.width
        return tuple(slice(h, h + n) for n in self.owned_shape)

    def scatter(self, global_field: np.ndarray) -> np.ndarray:
        """Extract this rank's local array (with halo) from a global field.

        Halo cells that fall outside the global domain are filled by edge
        replication, which is what the physical absorbing boundary would
        overwrite anyway.
        """
        h = self.halo.width
        pad = [(h, h)] * global_field.ndim
        padded = np.pad(global_field, pad, mode="edge")
        sl = tuple(
            slice(s.start, s.stop + 2 * h) for s in self.owned
        )  # owned region in padded coords starts at s.start (+h offset -h halo)
        return np.ascontiguousarray(padded[sl])

    def gather_into(self, global_field: np.ndarray, local_field: np.ndarray) -> None:
        """Write this rank's owned region of ``local_field`` back into the
        global array."""
        global_field[self.owned] = local_field[self.interior()]


class CartesianDecomposition:
    """Split a :class:`Grid` across ``dims`` ranks with stencil-radius halos.

    Parameters
    ----------
    grid:
        The global grid.
    dims:
        Number of ranks along each axis; a scalar total is factored with
        :func:`best_dims`.
    halo:
        Ghost-layer width (the stencil radius; 4 for the paper's 8-wide
        operators).
    """

    def __init__(
        self,
        grid: Grid,
        dims: int | Sequence[int],
        halo: int = 4,
    ):
        self.grid = grid
        if np.isscalar(dims):
            self.dims = best_dims(int(dims), grid.ndim)  # type: ignore[arg-type]
        else:
            self.dims = tuple(int(d) for d in dims)  # type: ignore[union-attr]
        if len(self.dims) != grid.ndim:
            raise ConfigurationError(
                f"dims must have {grid.ndim} entries, got {len(self.dims)}"
            )
        if any(d < 1 for d in self.dims):
            raise ConfigurationError(f"dims must be positive, got {self.dims}")
        if halo < 0:
            raise ConfigurationError("halo width must be >= 0")
        self.halo = int(halo)
        for ax, (n, d) in enumerate(zip(grid.shape, self.dims)):
            if n // d < max(1, self.halo):
                raise ConfigurationError(
                    f"axis {ax}: {n} points over {d} ranks leaves slabs thinner "
                    f"than the halo width {self.halo}"
                )
        self._subdomains = [self._build(r) for r in range(self.nranks)]

    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        return int(np.prod(self.dims))

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of ``rank`` (C order)."""
        if not 0 <= rank < self.nranks:
            raise ConfigurationError(f"rank {rank} out of range 0..{self.nranks - 1}")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Linear rank of Cartesian ``coords``."""
        return int(np.ravel_multi_index(tuple(coords), self.dims))

    def neighbour(self, rank: int, axis: int, side: str) -> int | None:
        """Rank of the neighbour of ``rank`` on ``side`` ('lo'/'hi') of
        ``axis``, or None at the domain edge (no periodic wrap)."""
        coords = list(self.coords_of(rank))
        coords[axis] += -1 if side == "lo" else 1
        if coords[axis] < 0 or coords[axis] >= self.dims[axis]:
            return None
        return self.rank_of(coords)

    def axis_ranges(self, axis: int) -> list[tuple[int, int]]:
        """Owned index ranges along ``axis`` for each process-coordinate.

        Points are distributed as evenly as possible, the first
        ``n % d`` slabs getting one extra point (block distribution).
        """
        n, d = self.grid.shape[axis], self.dims[axis]
        base, extra = divmod(n, d)
        ranges = []
        start = 0
        for c in range(d):
            size = base + (1 if c < extra else 0)
            ranges.append((start, start + size))
            start += size
        return ranges

    def _build(self, rank: int) -> Subdomain:
        coords = self.coords_of(rank)
        owned = tuple(
            slice(*self.axis_ranges(ax)[c]) for ax, c in enumerate(coords)
        )
        owned_shape = tuple(s.stop - s.start for s in owned)
        local_shape = tuple(n + 2 * self.halo for n in owned_shape)
        lo = tuple(c > 0 for c in coords)
        hi = tuple(c < d - 1 for c, d in zip(coords, self.dims))
        halo = HaloSpec(self.halo, lo, hi)
        origin = tuple(
            self.grid.origin[ax]
            + self.grid.spacing[ax] * (owned[ax].start - self.halo)
            for ax in range(self.grid.ndim)
        )
        local_grid = Grid(local_shape, self.grid.spacing, origin)
        return Subdomain(rank, coords, owned, local_grid, halo)

    def subdomain(self, rank: int) -> Subdomain:
        return self._subdomains[rank]

    def __iter__(self) -> Iterator[Subdomain]:
        return iter(self._subdomains)

    # ------------------------------------------------------------------
    # halo message geometry
    # ------------------------------------------------------------------
    def send_slices(self, axis: int, side: str, local_shape: tuple[int, ...]) -> tuple[slice, ...]:
        """Slices of a local array holding the *owned* cells adjacent to the
        (axis, side) face — the data sent to that neighbour."""
        h = self.halo
        sl = [slice(None)] * len(local_shape)
        if side == "lo":
            sl[axis] = slice(h, 2 * h)
        else:
            sl[axis] = slice(local_shape[axis] - 2 * h, local_shape[axis] - h)
        return tuple(sl)

    def recv_slices(self, axis: int, side: str, local_shape: tuple[int, ...]) -> tuple[slice, ...]:
        """Slices of a local array holding the ghost cells on the
        (axis, side) face — where a neighbour's data lands."""
        h = self.halo
        sl = [slice(None)] * len(local_shape)
        if side == "lo":
            sl[axis] = slice(0, h)
        else:
            sl[axis] = slice(local_shape[axis] - h, local_shape[axis])
        return tuple(sl)

    def face_bytes(self, rank: int, dtype_itemsize: int = 4) -> int:
        """Total bytes this rank exchanges per halo swap (all faces, one
        field)."""
        sub = self.subdomain(rank)
        local_shape = sub.local_grid.shape
        total = 0
        for axis, side in sub.halo.exchange_faces():
            sl = self.send_slices(axis, side, local_shape)
            count = 1
            for s, n in zip(sl, local_shape):
                start, stop, _ = s.indices(n)
                count *= stop - start
            total += count * dtype_itemsize
        return total
