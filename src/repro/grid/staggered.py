"""Staggered-grid conventions for the first-order systems.

The acoustic (Eq. 2 of the paper) and elastic (Eq. 3) propagators use
staggered grids: pressure/diagonal stresses live at integer grid points,
particle velocities at half-point offsets along their own axis, and shear
stresses at half-point offsets along both of their axes (the standard
Virieux / Levander layout).

We keep all staggered fields on arrays of the *same shape* as the base grid
— a half-offset field's sample ``i`` represents location ``i + 1/2`` along
the staggered axes. This is how production staggered-grid codes (and the
paper's Fortran) store them; the offset only changes which *derivative
flavour* (forward or backward half-point) applies.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Offset markers: a field component is either on integer points (FULL) or
#: half-point shifted (HALF) along each axis.
FULL = 0
HALF = 1


@dataclass(frozen=True)
class StaggerOffset:
    """Per-axis stagger of a field component.

    ``offsets[i]`` is :data:`FULL` (integer points) or :data:`HALF`
    (points ``j + 1/2``) along axis ``i``.
    """

    offsets: tuple[int, ...]

    def __post_init__(self):
        if not all(o in (FULL, HALF) for o in self.offsets):
            raise ValueError(f"offsets must be FULL(0) or HALF(1), got {self.offsets}")

    @property
    def ndim(self) -> int:
        return len(self.offsets)

    def is_half(self, axis: int) -> bool:
        return self.offsets[axis] == HALF

    @staticmethod
    def centered(ndim: int) -> "StaggerOffset":
        """All-integer-point stagger (pressure, diagonal stress)."""
        return StaggerOffset((FULL,) * ndim)

    @staticmethod
    def half_along(ndim: int, *axes: int) -> "StaggerOffset":
        """Half-point stagger along the given axes (velocities, shear
        stresses)."""
        off = [FULL] * ndim
        for a in axes:
            off[a] = HALF
        return StaggerOffset(tuple(off))

    def derivative_flavour(self, axis: int, target: "StaggerOffset") -> str:
        """Which half-point derivative moves a field at this stagger to
        ``target`` along ``axis``.

        Returns ``'forward'`` when this field is on integer points and the
        target on half points (D+ : samples i..i+1 -> i+1/2), ``'backward'``
        for the reverse (D- : samples i-1..i -> i). Raises ``ValueError``
        when the staggers agree along the axis (no half-point derivative
        connects them).
        """
        src, dst = self.offsets[axis], target.offsets[axis]
        if src == FULL and dst == HALF:
            return "forward"
        if src == HALF and dst == FULL:
            return "backward"
        raise ValueError(
            f"no half-point derivative along axis {axis} between {self} and {target}"
        )


def staggered_shape(base_shape: tuple[int, ...], offset: StaggerOffset) -> tuple[int, ...]:
    """Array shape used to store a field at ``offset`` on a grid of
    ``base_shape``.

    With the same-shape storage convention this is simply ``base_shape``;
    the function exists to make the convention explicit at call sites and to
    validate dimensionality.
    """
    if len(base_shape) != offset.ndim:
        raise ValueError(
            f"stagger ndim {offset.ndim} does not match grid ndim {len(base_shape)}"
        )
    return tuple(base_shape)
