"""Regular grids, staggered-grid conventions and domain decomposition."""

from repro.grid.grid import Grid
from repro.grid.staggered import StaggerOffset, staggered_shape, FULL, HALF
from repro.grid.decomposition import (
    CartesianDecomposition,
    Subdomain,
    HaloSpec,
    best_dims,
)

__all__ = [
    "Grid",
    "StaggerOffset",
    "staggered_shape",
    "FULL",
    "HALF",
    "CartesianDecomposition",
    "Subdomain",
    "HaloSpec",
    "best_dims",
]
