"""The :class:`Grid` — a regular Cartesian mesh in 2 or 3 dimensions.

Axis convention follows the paper's notation ``(z, x)`` in 2-D and
``(z, x, y)`` in 3-D: depth first (axis 0), then horizontal axes. Fields are
stored C-contiguous, so the *last* axis is the fast (unit-stride) one — this
matters to the coalescing analysis in :mod:`repro.acc` and to the
transposition optimization of the paper's Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.utils.arrays import DTYPE, pad_tuple
from repro.utils.errors import ConfigurationError

_AXIS_NAMES = {2: ("z", "x"), 3: ("z", "x", "y")}


@dataclass(frozen=True)
class Grid:
    """A regular grid over a physical box.

    Parameters
    ----------
    shape:
        Number of grid points along each axis, ``(nz, nx)`` or
        ``(nz, nx, ny)``.
    spacing:
        Grid step along each axis in metres. A scalar is broadcast to all
        axes.
    origin:
        Physical coordinate of grid point ``(0, ..., 0)`` in metres.
    """

    shape: tuple[int, ...]
    spacing: tuple[float, ...]
    origin: tuple[float, ...] = field(default=None)  # type: ignore[assignment]

    def __init__(
        self,
        shape: Sequence[int],
        spacing: float | Sequence[float] = 10.0,
        origin: float | Sequence[float] = 0.0,
    ):
        shape_t = tuple(int(n) for n in shape)
        ndim = len(shape_t)
        if ndim not in (2, 3):
            raise ConfigurationError(f"Grid supports 2-D and 3-D, got ndim={ndim}")
        if any(n < 2 for n in shape_t):
            raise ConfigurationError(f"each axis needs >= 2 points, got {shape_t}")
        if np.isscalar(spacing):
            spacing_t = (float(spacing),) * ndim  # type: ignore[arg-type]
        else:
            spacing_t = tuple(float(s) for s in spacing)  # type: ignore[union-attr]
        if len(spacing_t) != ndim:
            raise ConfigurationError(
                f"spacing must have {ndim} entries, got {len(spacing_t)}"
            )
        if any(s <= 0 for s in spacing_t):
            raise ConfigurationError(f"spacing must be positive, got {spacing_t}")
        if np.isscalar(origin):
            origin_t = (float(origin),) * ndim  # type: ignore[arg-type]
        else:
            origin_t = tuple(float(o) for o in origin)  # type: ignore[union-attr]
        if len(origin_t) != ndim:
            raise ConfigurationError(
                f"origin must have {ndim} entries, got {len(origin_t)}"
            )
        object.__setattr__(self, "shape", shape_t)
        object.__setattr__(self, "spacing", spacing_t)
        object.__setattr__(self, "origin", origin_t)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions (2 or 3)."""
        return len(self.shape)

    @property
    def npoints(self) -> int:
        """Total number of grid points."""
        return int(np.prod(self.shape))

    @property
    def axis_names(self) -> tuple[str, ...]:
        """``('z', 'x')`` in 2-D, ``('z', 'x', 'y')`` in 3-D."""
        return _AXIS_NAMES[self.ndim]

    @property
    def extent(self) -> tuple[float, ...]:
        """Physical size of the box along each axis in metres."""
        return tuple((n - 1) * d for n, d in zip(self.shape, self.spacing))

    @property
    def min_spacing(self) -> float:
        return min(self.spacing)

    def axis(self, i: int) -> np.ndarray:
        """Physical coordinates of the grid points along axis ``i``."""
        n = self.shape[i]
        return self.origin[i] + self.spacing[i] * np.arange(n, dtype=np.float64)

    def axes(self) -> tuple[np.ndarray, ...]:
        """Coordinate vectors for all axes."""
        return tuple(self.axis(i) for i in range(self.ndim))

    # ------------------------------------------------------------------
    # fields
    # ------------------------------------------------------------------
    def zeros(self, dtype=DTYPE) -> np.ndarray:
        """Allocate a zero field on this grid."""
        return np.zeros(self.shape, dtype=dtype)

    def full(self, value: float, dtype=DTYPE) -> np.ndarray:
        """Allocate a constant field on this grid."""
        return np.full(self.shape, value, dtype=dtype)

    def field_bytes(self, dtype=DTYPE) -> int:
        """Memory footprint in bytes of one field on this grid."""
        return self.npoints * np.dtype(dtype).itemsize

    # ------------------------------------------------------------------
    # coordinate <-> index conversion
    # ------------------------------------------------------------------
    def nearest_index(self, coords: Sequence[float]) -> tuple[int, ...]:
        """Index of the grid point nearest to physical ``coords`` (metres).

        Raises :class:`ConfigurationError` when the point lies outside the
        grid box by more than half a cell.
        """
        if len(coords) != self.ndim:
            raise ConfigurationError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        idx = []
        for i, c in enumerate(coords):
            f = (float(c) - self.origin[i]) / self.spacing[i]
            j = int(round(f))
            if j < 0 or j >= self.shape[i]:
                raise ConfigurationError(
                    f"coordinate {c} m lies outside axis {self.axis_names[i]} "
                    f"range [{self.origin[i]}, {self.origin[i] + self.extent[i]}] m"
                )
            idx.append(j)
        return tuple(idx)

    def index_coords(self, index: Sequence[int]) -> tuple[float, ...]:
        """Physical coordinates of grid point ``index``."""
        if len(index) != self.ndim:
            raise ConfigurationError(
                f"expected {self.ndim} indices, got {len(index)}"
            )
        return tuple(
            self.origin[i] + self.spacing[i] * int(j) for i, j in enumerate(index)
        )

    def center_index(self) -> tuple[int, ...]:
        """Index of the central grid point."""
        return tuple(n // 2 for n in self.shape)

    # ------------------------------------------------------------------
    # iteration / dunder sugar
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(n) for n in self.shape)
        sp = ",".join(f"{s:g}" for s in self.spacing)
        return f"Grid({dims}, spacing=({sp}) m)"

    def with_shape(self, shape: Sequence[int]) -> "Grid":
        """A grid with the same spacing/origin but a different shape.

        Used by the decomposition code to build subdomain-local grids.
        """
        return Grid(shape, self.spacing, self.origin)

    def scaled(self, factor: int) -> "Grid":
        """A refinement of this grid: ``factor``x more points per axis with
        proportionally smaller spacing (same physical extent). Used by the
        convergence tests."""
        if factor < 1:
            raise ConfigurationError("factor must be >= 1")
        new_shape = tuple((n - 1) * factor + 1 for n in self.shape)
        new_spacing = tuple(s / factor for s in self.spacing)
        return Grid(new_shape, new_spacing, self.origin)
