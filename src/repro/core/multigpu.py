"""Multi-GPU domain decomposition — the paper's stated path forward.

"Path forward, we believe that exploiting multiple GPUs will provide
powerful insights. Consequently, overlapping MPI communications with GPU
computations could improve performance, especially when larger grid
dimensions are used." (Section 7.)

The model follows the paper's own single-GPU machinery: the domain is
decomposed into slabs along the depth axis (one per card); each step every
card runs its slab's kernels and exchanges stencil-radius ghost planes with
its neighbours over PCIe through the host ("Only the ghost nodes need to be
exchanged between host and GPU at each time step when partitioning the
domain among several GPUs"). Ghost faces are non-contiguous in general; the
``transpose_pack`` option models the paper's suggested on-GPU repacking
("One workaround is rearranging data of these ghost nodes by performing a
transposition on GPU"), collapsing the per-plane DMA chunks into one.

With ``overlap=True``, boundary-slab kernels run first and the ghost
exchange proceeds concurrently with the interior kernels (the
MPI/compute-overlap idea), so the per-step cost is
``max(kernels, boundary + comm)`` instead of their sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acc.runtime import Runtime
from repro.core.config import GpuTimes, GPUOptions
from repro.core.inventory import device_resident_bytes
from repro.core.pipeline import OffloadPipeline
from repro.core.platform import CRAY_K40, Platform
from repro.gpusim.device import Device
from repro.gpusim.kernelmodel import estimate_kernel_time
from repro.gpusim.memory import DeviceMemory
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.grid import Grid
from repro.mpisim.comm import SimMPI
from repro.mpisim.halo import HaloExchanger
from repro.observe import runlog
from repro.propagators.workloads import workloads_for
from repro.utils.errors import ConfigurationError

#: wavefields whose halos move per step, per formulation/dimension
_EXCHANGED_FIELDS = {
    ("isotropic", 2): 1,
    ("isotropic", 3): 1,
    ("acoustic", 2): 3,
    ("acoustic", 3): 4,
    ("elastic", 2): 5,
    ("elastic", 3): 9,
    ("vti", 2): 2,
    ("vti", 3): 2,
}


@dataclass
class MultiGpuTimes:
    """Modelled multi-GPU modeling run."""

    ngpus: int
    total: float = 0.0
    kernel: float = 0.0
    comm: float = 0.0
    snapshots: float = 0.0
    setup: float = 0.0
    success: bool = True
    failure: str | None = None
    per_device_bytes: list[int] = field(default_factory=list)

    def speedup_vs(self, single: "MultiGpuTimes") -> float:
        """Strong-scaling speedup against a single-card run."""
        if not (self.success and single.success) or self.total <= 0:
            raise ConfigurationError("speedup needs two successful runs")
        return single.total / self.total

    def efficiency_vs(self, single: "MultiGpuTimes") -> float:
        return self.speedup_vs(single) / self.ngpus


def _slab_shapes(shape: tuple[int, ...], ngpus: int) -> list[tuple[int, ...]]:
    """Block-distribute the depth axis across cards."""
    n0 = shape[0]
    base, extra = divmod(n0, ngpus)
    if base < 8:
        raise ConfigurationError(
            f"{n0} depth planes over {ngpus} GPUs leaves slabs too thin"
        )
    out = []
    for g in range(ngpus):
        nz = base + (1 if g < extra else 0)
        out.append((nz,) + tuple(shape[1:]))
    return out


def estimate_multi_gpu_modeling(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    ngpus: int,
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    overlap: bool = True,
    transpose_pack: bool = True,
    space_order: int = 8,
    boundary_width: int = 16,
    snapshot_decimate: int = 4,
) -> MultiGpuTimes:
    """Strong-scaling estimate of modeling across ``ngpus`` identical cards.

    All cards are assumed to step in lockstep (the slowest slab binds each
    step); neighbouring exchanges use each pair's own PCIe links
    concurrently, so one step pays a single D2H + H2D round trip of the
    widest face set.
    """
    if ngpus < 1:
        raise ConfigurationError("ngpus must be >= 1")
    if nt < 1 or snap_period < 1:
        raise ConfigurationError("nt and snap_period must be >= 1")
    options = options if options is not None else GPUOptions()
    physics = physics.lower()
    ndim = len(shape)
    try:
        slabs = _slab_shapes(shape, ngpus)
    except ConfigurationError:
        return MultiGpuTimes(ngpus=ngpus, success=False, failure="too-thin")
    toolkit = options.compiler.default_toolkit
    flags = options.flags
    pinned = flags.pin
    result = MultiGpuTimes(ngpus=ngpus)

    # --- capacity check + per-slab kernel time -------------------------
    kernel_times = []
    boundary_times = []
    for slab in slabs:
        need = device_resident_bytes(physics, slab, boundary_width)
        result.per_device_bytes.append(need)
        mem = DeviceMemory(platform.gpu.memory_bytes)
        if need > mem.usable:
            return MultiGpuTimes(
                ngpus=ngpus, success=False, failure="oom",
                per_device_bytes=result.per_device_bytes,
            )
        kw = {}
        if physics == "isotropic":
            kw = {"variant": "restructured", "pml_width": boundary_width}
        workloads = workloads_for(physics, slab, space_order, **kw)
        t_k = 0.0
        for w in workloads:
            launch = options.compiler.lower(
                options.compiler.preferred_construct(), w,
                options.compiler.preferred_schedule(), flags,
            )
            t_k += estimate_kernel_time(platform.gpu, w, launch, toolkit).seconds
            t_k += platform.gpu.launch_overhead_s
        kernel_times.append(t_k)
        # boundary sub-slabs (stencil-radius planes next to each face) must
        # complete before their halos can ship
        radius = space_order // 2
        frac = min(1.0, 2.0 * radius / slab[0])
        boundary_times.append(t_k * frac)

    t_kernel_step = max(kernel_times)

    # --- per-step ghost exchange ----------------------------------------
    radius = space_order // 2
    face_points = int(np.prod(shape[1:])) * radius
    nfields = _EXCHANGED_FIELDS[(physics, ndim)]
    face_bytes = face_points * 4 * nfields
    if ngpus == 1:
        t_comm_step = 0.0
    else:
        # ghost planes are contiguous along the slab axis here (depth-major
        # C order), but each *field* ships separately; without the on-GPU
        # packing transposition every field pays its own DMA setup chain
        chunks = 1 if transpose_pack else nfields * radius
        d2h = platform.pcie.transfer_time(face_bytes, pinned=pinned, chunks=chunks)
        h2d = platform.pcie.transfer_time(face_bytes, pinned=pinned, chunks=chunks)
        # both directions per interface; pairs run on their own links
        t_comm_step = 2.0 * (d2h + h2d)

    if overlap and ngpus > 1:
        t_step = max(t_kernel_step, max(boundary_times) + t_comm_step)
    else:
        t_step = t_kernel_step + t_comm_step

    # --- snapshots: every card offloads its slab concurrently -----------
    snap_bytes = max(
        int(np.prod(s)) * 4 // (snapshot_decimate**ndim) for s in slabs
    )
    t_snap = platform.pcie.transfer_time(snap_bytes, pinned=pinned)
    nsnaps = nt // snap_period

    # --- initial copyin of each card's inventory (concurrent) -----------
    t_setup = platform.pcie.transfer_time(
        max(result.per_device_bytes), pinned=pinned
    )

    result.kernel = nt * t_kernel_step
    result.comm = nt * t_comm_step
    result.snapshots = nsnaps * t_snap
    result.setup = t_setup
    result.total = nt * t_step + result.snapshots + result.setup
    return result


def scaling_study(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8),
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    overlap: bool = True,
) -> dict[int, MultiGpuTimes]:
    """Run the estimate across a set of card counts."""
    return {
        n: estimate_multi_gpu_modeling(
            physics, shape, nt, snap_period, n,
            platform=platform, options=options, overlap=overlap,
        )
        for n in gpu_counts
    }


# ---------------------------------------------------------------------------
# executed per-rank path
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExchangeProtocol:
    """How the per-step ghost exchange talks to each card.

    The defaults are the correct protocol (pull the send faces, exchange,
    push the ghost slabs back). Each knob doubles as a fault injector for
    the sanitizer's fault-seeded tests:

    * ``update_host_before_send=False`` — the MPI send packs a host buffer
      no ``update host`` refreshed (``stale-host-read``);
    * ``update_ghost_device=False`` — the received ghost slab never reaches
      the card (``stale-device-read`` on the next kernel);
    * ``async_updates=True`` with ``sync_before_send=False`` — the send
      races the asynchronous ``update host`` still filling the face
      (``halo-send-before-sync``); with ``sync_before_send=True`` this is
      the legitimate overlap protocol (a ``wait(queue)`` orders the pair).
    """

    update_host_before_send: bool = True
    update_ghost_device: bool = True
    async_updates: bool = False
    sync_before_send: bool = True
    queue: int = 1

    @classmethod
    def from_faults(cls, specs, queue: int = 1) -> "ExchangeProtocol":
        """Build a (mis)protocol from shared fault specs — the single fault
        vocabulary of :mod:`repro.resilience.faults`. Accepts
        :class:`~repro.resilience.faults.FaultSpec` objects or kind strings;
        non-protocol kinds are ignored (they inject through the device/MPI
        hooks instead)."""
        from repro.resilience import faults as F

        kinds = {getattr(s, "kind", s) for s in specs}
        unknown = kinds - set(F.ALL_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown fault kind(s): {', '.join(sorted(unknown))}"
            )
        racy = F.HALO_SEND_BEFORE_SYNC in kinds
        return cls(
            update_host_before_send=F.HALO_STALE_HOST not in kinds,
            update_ghost_device=F.HALO_STALE_DEVICE not in kinds,
            async_updates=racy,
            sync_before_send=not racy,
            queue=queue,
        )

    def fault_specs(self) -> tuple:
        """The protocol-hazard fault specs this configuration embodies
        (empty for the correct protocol) — the reverse of
        :meth:`from_faults`."""
        from repro.resilience import faults as F

        specs = []
        if not self.update_host_before_send:
            specs.append(F.FaultSpec(F.HALO_STALE_HOST))
        if not self.update_ghost_device:
            specs.append(F.FaultSpec(F.HALO_STALE_DEVICE))
        if self.async_updates and not self.sync_before_send:
            specs.append(F.FaultSpec(F.HALO_SEND_BEFORE_SYNC))
        return tuple(specs)


@dataclass
class _RankContext:
    """One card's slice of the run."""

    rank: int
    sub: object  # Subdomain
    pipe: OffloadPipeline
    host_field: np.ndarray
    local_shape: tuple[int, ...]
    plane_bytes: int


class MultiGpuPipeline:
    """Executed (per-rank) multi-GPU offload: one :class:`OffloadPipeline`
    per card over a slab decomposition, ghost planes exchanged through the
    host via :mod:`repro.mpisim` each step.

    Unlike :func:`estimate_multi_gpu_modeling` (a closed-form timing
    model), this drives real per-rank directive streams — every ``update``
    of a ghost face, every ``note_host_write`` of a landed slab, every MPI
    message — so the analyzer and the sanitizer see the actual schedule.
    Pass a :class:`~repro.sanitize.session.SanitizeSession` as ``session``
    to check it live.
    """

    #: exchanged halo field key (the exchanger's name space, not the
    #: present table's — ``session.map_field`` bridges the two)
    FIELD_KEY = "u"

    def __init__(
        self,
        physics: str,
        shape: tuple[int, ...],
        ngpus: int,
        platform: Platform = CRAY_K40,
        options: GPUOptions | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        nreceivers: int = 16,
        halo_width: int | None = None,
        session: object | None = None,
        protocol: ExchangeProtocol | None = None,
        tracers: list | None = None,
        exchange_tracer: object | None = None,
        injector: object | None = None,
    ):
        if ngpus < 1:
            raise ConfigurationError("ngpus must be >= 1")
        if tracers is not None and len(tracers) != ngpus:
            raise ConfigurationError(
                f"need one tracer per rank: got {len(tracers)} for {ngpus} GPUs"
            )
        self.physics = physics.lower()
        self.shape = tuple(int(n) for n in shape)
        self.ndim = len(self.shape)
        self.ngpus = int(ngpus)
        self.options = options if options is not None else GPUOptions()
        self.session = session
        self.protocol = protocol if protocol is not None else ExchangeProtocol()
        self.radius = space_order // 2
        halo = self.radius if halo_width is None else int(halo_width)
        if session is not None:
            session.declare_stencil(self.radius)
        dims = (self.ngpus,) + (1,) * (self.ndim - 1)
        self.decomp = CartesianDecomposition(Grid(self.shape), dims, halo=halo)
        self.mpi = SimMPI(self.ngpus, observer=session)
        if injector is not None:
            injector.attach_mpi(self.mpi)
        self._exchange_tracer = exchange_tracer
        self.ranks: list[_RankContext] = []
        for r in range(self.ngpus):
            sub = self.decomp.subdomain(r)
            local_shape = sub.local_grid.shape
            device = Device(
                platform.gpu,
                pcie=platform.pcie,
                toolkit=self.options.compiler.default_toolkit,
                pinned_host=self.options.flags.pin,
            )
            rt = Runtime(
                device,
                compiler=self.options.compiler,
                flags=self.options.flags,
                tracer=tracers[r] if tracers is not None else None,
            )
            if session is not None:
                rt.attach_recorder(session.recorder(r))
            if injector is not None:
                rt.attach_injector(injector, rank=r)
            pipe = OffloadPipeline(
                rt,
                self.physics,
                local_shape,
                nreceivers=nreceivers,
                space_order=space_order,
                boundary_width=boundary_width,
                options=self.options,
            )
            self.ranks.append(_RankContext(
                rank=r,
                sub=sub,
                pipe=pipe,
                host_field=np.zeros(local_shape, dtype=np.float32),
                local_shape=local_shape,
                plane_bytes=int(np.prod(local_shape[1:])) * 4,
            ))
        self.primary = self.ranks[0].pipe.primary
        # the exchanger's halo spans share rank 0's simulated timeline, so a
        # merged Perfetto export lines kernels and messages up on one axis
        self.exchanger = HaloExchanger(
            self.decomp,
            self.mpi,
            tracer=exchange_tracer,
            clock=(
                self.ranks[0].pipe.rt.device.clock
                if exchange_tracer is not None
                else None
            ),
            sanitizer=session,
        )

    # ------------------------------------------------------------------
    def makespan_s(self) -> float:
        """The node's simulated makespan so far: the slowest rank's device
        clock. The serve layer charges each node's shot window with this
        (recovery waits are on the same clocks, so the figure includes
        them); it survives as a snapshot when the pipeline is torn down
        for a re-decomposition."""
        return max(rc.pipe.rt.device.clock.now for rc in self.ranks)

    def _backward_name(self) -> str:
        return "bwd:" + self.primary.split(":", 1)[1]

    def exchange(self, device_name: str | None = None) -> None:
        """One ghost swap of ``device_name`` (default: the primary
        wavefield) across all ranks, through the host.

        Per face: ``update host`` of the owned planes feeding the send
        (synchronous, or on the protocol's async queue), the MPI exchange,
        then ``note_host_write`` + ``update device`` of the landed ghost
        slab — so each card's directive stream carries the whole round
        trip. This is the instrumented path the sanitizer checks.
        """
        name = device_name if device_name is not None else self.primary
        proto = self.protocol
        if self.session is not None:
            self.session.map_field(self.FIELD_KEY, name)
        h = self.decomp.halo
        for rc in self.ranks:
            rt = rc.pipe.rt
            n0 = rc.local_shape[0]
            nbytes = h * rc.plane_bytes
            queue = proto.queue if proto.async_updates else None
            for axis, side in rc.sub.halo.exchange_faces():
                lo = h * rc.plane_bytes if side == "lo" else (n0 - 2 * h) * rc.plane_bytes
                if proto.update_host_before_send:
                    rt.update_host(name, nbytes=nbytes, offset=lo, queue=queue)
            faces = rc.sub.halo.exchange_faces()
            if faces and proto.async_updates and proto.sync_before_send:
                rt.wait(proto.queue)
            for axis, side in faces:
                lo = h * rc.plane_bytes if side == "lo" else (n0 - 2 * h) * rc.plane_bytes
                # the face is packed into the message from the host copy
                rt.note_host_read(name, offset=lo, nbytes=nbytes)
        self.exchanger.exchange(
            [{self.FIELD_KEY: rc.host_field} for rc in self.ranks]
        )
        for rc in self.ranks:
            rt = rc.pipe.rt
            n0 = rc.local_shape[0]
            nbytes = h * rc.plane_bytes
            for axis, side in rc.sub.halo.exchange_faces():
                lo = 0 if side == "lo" else (n0 - h) * rc.plane_bytes
                # the neighbour's planes landed in the host ghost slab
                rt.note_host_write(name, offset=lo, nbytes=nbytes)
                if proto.update_ghost_device:
                    rt.update_device(name, nbytes=nbytes, offset=lo)
        runlog.count("multigpu.exchanges")

    # ------------------------------------------------------------------
    def _compiled_steps(
        self,
        mode: str,
        nt: int,
        snap_period: int,
        phase: str,
        snapshot_decimate: int = 1,
    ):
        """Per-rank compiled step callables for ``phase`` when
        ``options.compiled`` is set, else None (interpreted).

        Only the interior step loop compiles — halo exchange, snapshots
        and phase transitions stay interpreted because they touch live
        neighbour state. A compilation that produced phase prologues
        (hoisted updates) is admitted when the translation validator's
        cross-rank reorder proof (``DF204``) shows the prologue touches
        no halo-exchanged field: the prologue then runs lazily before
        each rank's first step of the phase, after the interpreted
        allocation/swap it must follow.  When the proof refuses, the
        fallback to the interpreter is *loud*: a warning plus the
        ``multigpu.compiled_fallback`` ledger counter. Ranks under a
        sanitize session bind faithfully, so their recorders still see
        every directive.
        """
        if not self.options.compiled:
            return None
        from repro.compile.runner import compiled_steps_for_rank

        bound = [
            compiled_steps_for_rank(
                rc.pipe, mode, nt, snap_period, snapshot_decimate
            )
            for rc in self.ranks
        ]
        prologue_name = f"{phase}_prologue"
        prologue_ranks = [
            b.steps.get(prologue_name) for b in bound
        ]
        if any(p is not None for p in prologue_ranks):
            from repro.analyze.framework import Severity
            from repro.compile.validate import prologue_lift_proof

            exchanged = {self.primary, self._backward_name()}
            diags = prologue_lift_proof(
                [tuple(p.ops) if p is not None else () for p in prologue_ranks],
                exchanged,
            )
            if any(d.severity >= Severity.ERROR for d in diags):
                import warnings

                reasons = "; ".join(d.message for d in diags[:2])
                warnings.warn(
                    f"multi-GPU {phase} falls back to the interpreter: "
                    f"the prologue lift fails the cross-rank reorder "
                    f"proof (DF204): {reasons}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                runlog.count("multigpu.compiled_fallback")
                runlog.emit(
                    "compiled.fallback", phase=phase, rule="DF204",
                    reasons=reasons,
                )
                return None

            def lift(step, prologue):
                ran = [False]

                def call() -> None:
                    if prologue is not None and not ran[0]:
                        ran[0] = True
                        prologue()
                    step()

                return call

            runlog.emit(
                "compiled", ranks=len(bound), phase=phase,
                prologue_lifted=True,
            )
            return [
                lift(b.steps[phase], p)
                for b, p in zip(bound, prologue_ranks)
            ]
        runlog.emit("compiled", ranks=len(bound), phase=phase)
        return [b.steps[phase] for b in bound]

    # ------------------------------------------------------------------
    def run_modeling(
        self, nt: int, snap_period: int, snapshot_decimate: int = 4
    ) -> list[GpuTimes]:
        """The Figure-4 forward schedule on every card, ghost swaps between
        steps; returns per-rank modelled timings."""
        runlog.emit("run", op="modeling", nt=nt, ranks=len(self.ranks))
        forward = self._compiled_steps("modeling", nt, snap_period, "forward",
                                       snapshot_decimate)
        for rc in self.ranks:
            rc.pipe.allocate_forward()
        for n in range(nt):
            for r, rc in enumerate(self.ranks):
                forward[r]() if forward else rc.pipe.forward_step()
            self.exchange(self.primary)
            if (n + 1) % snap_period == 0:
                for rc in self.ranks:
                    rc.pipe.snapshot_to_host(decimate=snapshot_decimate)
        for rc in self.ranks:
            rc.pipe.finalize(with_image=False)
        runlog.emit("run.done", op="modeling")
        return [rc.pipe.gpu_times() for rc in self.ranks]

    def run_rtm(self, nt: int, snap_period: int) -> list[GpuTimes]:
        """Both phases: forward with full-field snapshots, swap, backward
        with imaging — the backward wavefield's halos swap per step too."""
        runlog.emit("run", op="rtm", nt=nt, ranks=len(self.ranks))
        forward = self._compiled_steps("rtm", nt, snap_period, "forward")
        backward = self._compiled_steps("rtm", nt, snap_period, "backward")
        for rc in self.ranks:
            rc.pipe.allocate_forward()
        for n in range(nt):
            for r, rc in enumerate(self.ranks):
                forward[r]() if forward else rc.pipe.forward_step()
            self.exchange(self.primary)
            if (n + 1) % snap_period == 0:
                for rc in self.ranks:
                    rc.pipe.snapshot_to_host(decimate=1)
        for rc in self.ranks:
            rc.pipe.swap_to_backward()
        bwd = self._backward_name()
        for n in range(nt - 1, -1, -1):
            if (n + 1) % snap_period == 0:
                for rc in self.ranks:
                    rc.pipe.load_forward_snapshot()
                    rc.pipe.imaging_step()
            for r, rc in enumerate(self.ranks):
                backward[r]() if backward else rc.pipe.backward_step()
            self.exchange(bwd)
        for rc in self.ranks:
            rc.pipe.finalize(with_image=rc.pipe.options.image_on_gpu)
        runlog.emit("run.done", op="rtm")
        return [rc.pipe.gpu_times() for rc in self.ranks]
