"""Multi-GPU domain decomposition — the paper's stated path forward.

"Path forward, we believe that exploiting multiple GPUs will provide
powerful insights. Consequently, overlapping MPI communications with GPU
computations could improve performance, especially when larger grid
dimensions are used." (Section 7.)

The model follows the paper's own single-GPU machinery: the domain is
decomposed into slabs along the depth axis (one per card); each step every
card runs its slab's kernels and exchanges stencil-radius ghost planes with
its neighbours over PCIe through the host ("Only the ghost nodes need to be
exchanged between host and GPU at each time step when partitioning the
domain among several GPUs"). Ghost faces are non-contiguous in general; the
``transpose_pack`` option models the paper's suggested on-GPU repacking
("One workaround is rearranging data of these ghost nodes by performing a
transposition on GPU"), collapsing the per-plane DMA chunks into one.

With ``overlap=True``, boundary-slab kernels run first and the ghost
exchange proceeds concurrently with the interior kernels (the
MPI/compute-overlap idea), so the per-step cost is
``max(kernels, boundary + comm)`` instead of their sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GPUOptions
from repro.core.inventory import device_resident_bytes
from repro.core.platform import CRAY_K40, Platform
from repro.gpusim.kernelmodel import estimate_kernel_time
from repro.gpusim.memory import DeviceMemory
from repro.propagators.workloads import workloads_for
from repro.utils.errors import ConfigurationError

#: wavefields whose halos move per step, per formulation/dimension
_EXCHANGED_FIELDS = {
    ("isotropic", 2): 1,
    ("isotropic", 3): 1,
    ("acoustic", 2): 3,
    ("acoustic", 3): 4,
    ("elastic", 2): 5,
    ("elastic", 3): 9,
    ("vti", 2): 2,
    ("vti", 3): 2,
}


@dataclass
class MultiGpuTimes:
    """Modelled multi-GPU modeling run."""

    ngpus: int
    total: float = 0.0
    kernel: float = 0.0
    comm: float = 0.0
    snapshots: float = 0.0
    setup: float = 0.0
    success: bool = True
    failure: str | None = None
    per_device_bytes: list[int] = field(default_factory=list)

    def speedup_vs(self, single: "MultiGpuTimes") -> float:
        """Strong-scaling speedup against a single-card run."""
        if not (self.success and single.success) or self.total <= 0:
            raise ConfigurationError("speedup needs two successful runs")
        return single.total / self.total

    def efficiency_vs(self, single: "MultiGpuTimes") -> float:
        return self.speedup_vs(single) / self.ngpus


def _slab_shapes(shape: tuple[int, ...], ngpus: int) -> list[tuple[int, ...]]:
    """Block-distribute the depth axis across cards."""
    n0 = shape[0]
    base, extra = divmod(n0, ngpus)
    if base < 8:
        raise ConfigurationError(
            f"{n0} depth planes over {ngpus} GPUs leaves slabs too thin"
        )
    out = []
    for g in range(ngpus):
        nz = base + (1 if g < extra else 0)
        out.append((nz,) + tuple(shape[1:]))
    return out


def estimate_multi_gpu_modeling(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    ngpus: int,
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    overlap: bool = True,
    transpose_pack: bool = True,
    space_order: int = 8,
    boundary_width: int = 16,
    snapshot_decimate: int = 4,
) -> MultiGpuTimes:
    """Strong-scaling estimate of modeling across ``ngpus`` identical cards.

    All cards are assumed to step in lockstep (the slowest slab binds each
    step); neighbouring exchanges use each pair's own PCIe links
    concurrently, so one step pays a single D2H + H2D round trip of the
    widest face set.
    """
    if ngpus < 1:
        raise ConfigurationError("ngpus must be >= 1")
    if nt < 1 or snap_period < 1:
        raise ConfigurationError("nt and snap_period must be >= 1")
    options = options if options is not None else GPUOptions()
    physics = physics.lower()
    ndim = len(shape)
    try:
        slabs = _slab_shapes(shape, ngpus)
    except ConfigurationError:
        return MultiGpuTimes(ngpus=ngpus, success=False, failure="too-thin")
    toolkit = options.compiler.default_toolkit
    flags = options.flags
    pinned = flags.pin
    result = MultiGpuTimes(ngpus=ngpus)

    # --- capacity check + per-slab kernel time -------------------------
    kernel_times = []
    boundary_times = []
    for slab in slabs:
        need = device_resident_bytes(physics, slab, boundary_width)
        result.per_device_bytes.append(need)
        mem = DeviceMemory(platform.gpu.memory_bytes)
        if need > mem.usable:
            return MultiGpuTimes(
                ngpus=ngpus, success=False, failure="oom",
                per_device_bytes=result.per_device_bytes,
            )
        kw = {}
        if physics == "isotropic":
            kw = {"variant": "restructured", "pml_width": boundary_width}
        workloads = workloads_for(physics, slab, space_order, **kw)
        t_k = 0.0
        for w in workloads:
            launch = options.compiler.lower(
                options.compiler.preferred_construct(), w,
                options.compiler.preferred_schedule(), flags,
            )
            t_k += estimate_kernel_time(platform.gpu, w, launch, toolkit).seconds
            t_k += platform.gpu.launch_overhead_s
        kernel_times.append(t_k)
        # boundary sub-slabs (stencil-radius planes next to each face) must
        # complete before their halos can ship
        radius = space_order // 2
        frac = min(1.0, 2.0 * radius / slab[0])
        boundary_times.append(t_k * frac)

    t_kernel_step = max(kernel_times)

    # --- per-step ghost exchange ----------------------------------------
    radius = space_order // 2
    face_points = int(np.prod(shape[1:])) * radius
    nfields = _EXCHANGED_FIELDS[(physics, ndim)]
    face_bytes = face_points * 4 * nfields
    if ngpus == 1:
        t_comm_step = 0.0
    else:
        # ghost planes are contiguous along the slab axis here (depth-major
        # C order), but each *field* ships separately; without the on-GPU
        # packing transposition every field pays its own DMA setup chain
        chunks = 1 if transpose_pack else nfields * radius
        d2h = platform.pcie.transfer_time(face_bytes, pinned=pinned, chunks=chunks)
        h2d = platform.pcie.transfer_time(face_bytes, pinned=pinned, chunks=chunks)
        # both directions per interface; pairs run on their own links
        t_comm_step = 2.0 * (d2h + h2d)

    if overlap and ngpus > 1:
        t_step = max(t_kernel_step, max(boundary_times) + t_comm_step)
    else:
        t_step = t_kernel_step + t_comm_step

    # --- snapshots: every card offloads its slab concurrently -----------
    snap_bytes = max(
        int(np.prod(s)) * 4 // (snapshot_decimate**ndim) for s in slabs
    )
    t_snap = platform.pcie.transfer_time(snap_bytes, pinned=pinned)
    nsnaps = nt // snap_period

    # --- initial copyin of each card's inventory (concurrent) -----------
    t_setup = platform.pcie.transfer_time(
        max(result.per_device_bytes), pinned=pinned
    )

    result.kernel = nt * t_kernel_step
    result.comm = nt * t_comm_step
    result.snapshots = nsnaps * t_snap
    result.setup = t_setup
    result.total = nt * t_step + result.snapshots + result.setup
    return result


def scaling_study(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8),
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    overlap: bool = True,
) -> dict[int, MultiGpuTimes]:
    """Run the estimate across a set of card counts."""
    return {
        n: estimate_multi_gpu_modeling(
            physics, shape, nt, snap_period, n,
            platform=platform, options=options, overlap=overlap,
        )
        for n in gpu_counts
    }
