"""Snapshot checkpointing for RTM under a memory budget.

The paper's central RTM constraint is snapshot storage: the forward
wavefield must be available, time-reversed, during the backward phase, and
"due to GPU global memory constraints ... the forward and backward
wave-field variables of RTM cannot be allocated at the same time". When
even the *host* cannot hold every snapshot (long 3-D surveys), production
RTM uses checkpointing: keep only ``budget`` evenly spaced checkpoints and
recompute the missing forward states from the nearest stored one during the
backward sweep (Griewank-style, single-level).

This module plans such schedules and quantifies the storage/recompute
trade-off; :func:`checkpointed_rtm_cost` applies it to the modelled GPU
pipeline times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class CheckpointPlan:
    """A single-level checkpoint schedule for ``nsnaps`` required states."""

    nsnaps: int
    stored_indices: tuple[int, ...]
    #: total forward steps re-run during the backward sweep
    recompute_steps: int
    snap_period: int

    @property
    def stored(self) -> int:
        return len(self.stored_indices)

    @property
    def storage_fraction(self) -> float:
        """Stored states / required states."""
        return self.stored / self.nsnaps if self.nsnaps else 1.0

    @property
    def recompute_factor(self) -> float:
        """Extra forward work relative to the original forward sweep."""
        total_forward = self.nsnaps * self.snap_period
        return self.recompute_steps / total_forward if total_forward else 0.0


def plan_checkpoints(nt: int, snap_period: int, budget: int) -> CheckpointPlan:
    """Plan which of the ``nt // snap_period`` snapshot states to store.

    ``budget`` is the number of full wavefield states the store may hold.
    Stored states are spread evenly; each missing state is recomputed by
    re-running the forward propagator from the nearest earlier checkpoint
    (states are consumed in reverse order, so each gap is re-entered once
    per missing state — the classic single-level cost).
    """
    if nt < 1 or snap_period < 1:
        raise ConfigurationError("nt and snap_period must be >= 1")
    if budget < 1:
        raise ConfigurationError("budget must hold at least one state")
    nsnaps = nt // snap_period
    if nsnaps == 0:
        return CheckpointPlan(0, (), 0, snap_period)
    if budget >= nsnaps:
        return CheckpointPlan(
            nsnaps, tuple(range(nsnaps)), 0, snap_period
        )
    stored = tuple(
        sorted({int(i) for i in np.linspace(0, nsnaps - 1, budget)})
    )
    # backward sweep cost: to materialise missing state k in the gap
    # (c_prev, c_next), re-run (k - c_prev) * snap_period forward steps
    stored_set = set(stored)
    recompute = 0
    for k in range(nsnaps):
        if k in stored_set:
            continue
        prev = max(i for i in stored if i < k)
        recompute += (k - prev) * snap_period
    return CheckpointPlan(nsnaps, stored, recompute, snap_period)


@dataclass(frozen=True)
class CheckpointedCost:
    """Modelled RTM cost under a checkpoint plan."""

    plan: CheckpointPlan
    baseline_seconds: float
    checkpointed_seconds: float
    storage_bytes: int

    @property
    def slowdown(self) -> float:
        return (
            self.checkpointed_seconds / self.baseline_seconds
            if self.baseline_seconds
            else 1.0
        )


def checkpointed_rtm_cost(
    forward_step_seconds: float,
    nt: int,
    snap_period: int,
    budget: int,
    field_bytes: int,
    transfer_seconds_per_state: float = 0.0,
) -> CheckpointedCost:
    """Cost of an RTM whose snapshot store is capped at ``budget`` states.

    ``forward_step_seconds`` is one forward time step's compute;
    ``transfer_seconds_per_state`` the per-state movement cost (PCIe d2h in
    the paper's pipeline). The baseline stores every state; the
    checkpointed run stores ``budget`` and pays recomputation.
    """
    if forward_step_seconds < 0 or transfer_seconds_per_state < 0:
        raise ConfigurationError("costs must be >= 0")
    plan = plan_checkpoints(nt, snap_period, budget)
    nsnaps = plan.nsnaps
    base = 2 * nt * forward_step_seconds + 2 * nsnaps * transfer_seconds_per_state
    ckpt = (
        2 * nt * forward_step_seconds
        + plan.recompute_steps * forward_step_seconds
        + 2 * plan.stored * transfer_seconds_per_state
    )
    return CheckpointedCost(
        plan=plan,
        baseline_seconds=base,
        checkpointed_seconds=ckpt,
        storage_bytes=plan.stored * field_bytes,
    )
