"""Snapshot management (the paper's ``snap_period`` machinery).

In Algorithm 1 the forward phase saves the source wavefield every
``snap_period`` steps; RTM's backward phase reads them back to apply the
imaging condition. "The snap_period value depends on the maximum frequency
used in the attached velocity model" — sampling the wavefield at (at least)
the Nyquist rate of the wavelet's effective maximum frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import ConfigurationError


def default_snap_period(dt: float, peak_freq: float) -> int:
    """Steps between snapshots: sample at 4x the effective maximum
    frequency (2.5x the Ricker peak), floored at 1."""
    if dt <= 0 or peak_freq <= 0:
        raise ConfigurationError("dt and peak_freq must be positive")
    f_max = 2.5 * peak_freq
    period = int(np.floor(1.0 / (4.0 * f_max * dt)))
    return max(1, period)


@dataclass
class SnapshotStore:
    """Host-side storage of forward-phase snapshots.

    ``decimate`` keeps every ``decimate``-th point per axis (the modeling
    driver's display movie); RTM stores full fields (``decimate=1``) because
    the imaging condition needs them exactly.
    """

    snap_period: int
    decimate: int = 1
    _frames: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        if self.snap_period < 1:
            raise ConfigurationError("snap_period must be >= 1")
        if self.decimate < 1:
            raise ConfigurationError("decimate must be >= 1")

    # ------------------------------------------------------------------
    def is_snap_step(self, step: int) -> bool:
        """Whether snapshots are taken *after* time step ``step``
        (0-based; the first snap lands on step snap_period - 1)."""
        return (step + 1) % self.snap_period == 0

    def save(self, step: int, wavefield: np.ndarray) -> None:
        """Store the (possibly decimated) wavefield for ``step``."""
        d = self.decimate
        view = wavefield[(slice(None, None, d),) * wavefield.ndim]
        self._frames[step] = np.array(view, copy=True)

    def load(self, step: int) -> np.ndarray:
        frame = self._frames.get(step)
        if frame is None:
            raise ConfigurationError(f"no snapshot stored for step {step}")
        return frame

    def has(self, step: int) -> bool:
        return step in self._frames

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._frames)

    @property
    def steps(self) -> list[int]:
        return sorted(self._frames)

    def frames(self) -> list[np.ndarray]:
        """Frames in time order (the modeling movie)."""
        return [self._frames[s] for s in self.steps]

    def nbytes(self) -> int:
        return sum(f.nbytes for f in self._frames.values())

    def clear(self) -> None:
        self._frames.clear()
