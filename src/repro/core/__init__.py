"""The paper's applications: seismic modeling and Reverse Time Migration.

Host drivers (:func:`run_modeling`, :func:`run_rtm`) execute the physics in
NumPy following the paper's Algorithm 1. GPU drivers wrap the same stepping
with the OpenACC offload pipeline of the paper's Figure 4 (data allocation ->
forward -> offload/upload swap -> backward -> store image) and return
modelled device timings; estimate drivers
(:func:`estimate_modeling`, :func:`estimate_rtm`) run the pipeline without
physics so the paper's full-size grids can be timed.
"""

from repro.core.config import (
    ModelingConfig,
    RTMConfig,
    GPUOptions,
    ModelingResult,
    RTMResult,
    GpuTimes,
)
from repro.core.platform import Platform, PLATFORMS
from repro.core.snapshots import SnapshotStore, default_snap_period
from repro.core.imaging import (
    cross_correlation_update,
    normalize_image,
    mute_shallow,
)
from repro.core.inventory import field_inventory, device_resident_bytes
from repro.core.pipeline import OffloadPipeline
from repro.core.modeling import run_modeling, run_modeling_gpu, estimate_modeling
from repro.core.rtm import run_rtm, run_rtm_gpu, estimate_rtm
from repro.core.multigpu import (
    MultiGpuTimes,
    estimate_multi_gpu_modeling,
    scaling_study,
)
from repro.core.survey import SurveyResult, run_survey, shot_line
from repro.core.offload_plan import OffloadPlan, plan_offload
from repro.core.checkpointing import (
    CheckpointPlan,
    CheckpointedCost,
    plan_checkpoints,
    checkpointed_rtm_cost,
)
from repro.core.reference import (
    cpu_modeling_time,
    cpu_rtm_time,
    ReferenceTimes,
)

__all__ = [
    "ModelingConfig",
    "RTMConfig",
    "GPUOptions",
    "ModelingResult",
    "RTMResult",
    "GpuTimes",
    "Platform",
    "PLATFORMS",
    "SnapshotStore",
    "default_snap_period",
    "cross_correlation_update",
    "normalize_image",
    "mute_shallow",
    "field_inventory",
    "device_resident_bytes",
    "OffloadPipeline",
    "run_modeling",
    "run_modeling_gpu",
    "estimate_modeling",
    "run_rtm",
    "run_rtm_gpu",
    "estimate_rtm",
    "SurveyResult",
    "OffloadPlan",
    "plan_offload",
    "CheckpointPlan",
    "CheckpointedCost",
    "plan_checkpoints",
    "checkpointed_rtm_cost",
    "run_survey",
    "shot_line",
    "MultiGpuTimes",
    "estimate_multi_gpu_modeling",
    "scaling_study",
    "cpu_modeling_time",
    "cpu_rtm_time",
    "ReferenceTimes",
]
