"""Field inventories: what each formulation keeps on the device.

Sizes drive the data directives of the Figure-4 pipeline and the OOM
behaviour (elastic 3-D exceeding the M2090's 6 GB). The C-PML memory
variables are carried *slab-restricted* on the device (only the absorbing
frame needs them), as production codes do — our host implementation keeps
them full-size for simplicity, which is a host-memory trade only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError

_F32 = 4


def _npoints(shape: tuple[int, ...]) -> int:
    return int(np.prod([int(n) for n in shape]))


def _pml_frame_fraction(shape: tuple[int, ...], width: int) -> float:
    """Fraction of the grid covered by the absorbing frame of ``width``."""
    total = _npoints(shape)
    interior = int(np.prod([max(n - 2 * width, 0) for n in shape]))
    return (total - interior) / total if total else 0.0


def field_inventory(
    physics: str,
    shape: tuple[int, ...],
    boundary_width: int = 16,
) -> dict[str, int]:
    """Device-resident bytes per named array for one formulation.

    Keys are grouped by prefix: ``wf:`` time-varying wavefields, ``mat:``
    material/coefficient fields, ``pml:`` boundary memory/coefficients.
    """
    physics = physics.lower()
    shape = tuple(int(n) for n in shape)
    ndim = len(shape)
    if ndim not in (2, 3):
        raise ConfigurationError(f"bad shape {shape}")
    n = _npoints(shape)
    fb = n * _F32
    frame = _pml_frame_fraction(shape, boundary_width)
    inv: dict[str, int] = {}
    if physics == "isotropic":
        inv["wf:u"] = fb
        inv["wf:u_prev"] = fb
        inv["mat:vp2dt2"] = fb
        # standard-PML coefficient fields (coeff_curr/prev/rhs + sigma2)
        for name in ("coeff_curr", "coeff_prev", "coeff_rhs", "sigma2"):
            inv[f"pml:{name}"] = fb
    elif physics == "acoustic":
        axes = ("z", "x", "y")[:ndim]
        inv["wf:p"] = fb
        for ax in axes:
            inv[f"wf:q{ax}"] = fb
        inv["mat:kappa"] = fb
        for ax in axes:
            inv[f"mat:buoy_{ax}"] = fb
        # psi memory: one per derivative (2 per axis), slab-restricted
        for ax in axes:
            inv[f"pml:psi_dq{ax}"] = int(fb * frame)
            inv[f"pml:psi_dp{ax}"] = int(fb * frame)
    elif physics == "elastic":
        if ndim == 2:
            wfs = ("vx", "vz", "sxx", "szz", "sxz")
            mats = ("lam", "lam2mu", "buoy_x", "buoy_z", "mu_xz")
            nderiv = 8
        else:
            wfs = ("vx", "vy", "vz", "sxx", "syy", "szz", "sxy", "sxz", "syz")
            mats = (
                "lam",
                "lam2mu",
                "buoy_x",
                "buoy_y",
                "buoy_z",
                "mu_xy",
                "mu_xz",
                "mu_yz",
            )
            nderiv = 22
        for w in wfs:
            inv[f"wf:{w}"] = fb
        for m in mats:
            inv[f"mat:{m}"] = fb
        for i in range(nderiv):
            inv[f"pml:psi{i}"] = int(fb * frame)
    elif physics == "vti":
        for w in ("p", "p_prev", "q", "q_prev"):
            inv[f"wf:{w}"] = fb
        for m in ("vp2dt2", "coef_h_p", "coef_h_q"):
            inv[f"mat:{m}"] = fb
        for name in ("coeff_curr", "coeff_prev", "coeff_rhs", "sigma2"):
            inv[f"pml:{name}"] = fb
    else:
        raise ConfigurationError(f"unknown physics '{physics}'")
    return inv


def device_resident_bytes(
    physics: str, shape: tuple[int, ...], boundary_width: int = 16
) -> int:
    """Total device bytes one phase of the pipeline keeps resident."""
    return sum(field_inventory(physics, shape, boundary_width).values())


def wavefield_names(physics: str, shape: tuple[int, ...]) -> list[str]:
    """Names of the time-varying fields (``wf:`` group)."""
    return [
        k
        for k in field_inventory(physics, shape)
        if k.startswith("wf:")
    ]


def primary_wavefield(physics: str) -> str:
    """The observable field snapshots carry (what update host moves)."""
    return {
        "isotropic": "wf:u",
        "acoustic": "wf:p",
        "elastic": "wf:szz",
        "vti": "wf:p",
    }[physics.lower()]
