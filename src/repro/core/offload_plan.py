"""The offload planner: decide how a seismic case maps onto the device(s).

The paper's data-allocation step began with exactly this analysis
("Nvidia System Management Interface program (nvidia-smi) provided the
required guidance"): does the forward set fit? do forward + backward sets
coexist, or is the Figure-4 swap needed? does the case need more than one
card? :func:`plan_offload` answers those questions for any formulation,
grid and card, and renders the decision as a report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inventory import field_inventory
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.specs import GPUSpec
from repro.utils.errors import ConfigurationError
from repro.utils.units import bytes_to_human


@dataclass(frozen=True)
class OffloadPlan:
    """The planner's decision for one case on one card."""

    physics: str
    shape: tuple[int, ...]
    device: str
    forward_bytes: int
    backward_extra_bytes: int
    usable_bytes: int
    #: 'resident' (everything coexists), 'swap' (the Figure-4 forward/
    #: backward swap), or 'multi-gpu' (does not fit one card at all)
    strategy: str
    #: minimum cards for the forward set under slab decomposition
    min_gpus: int

    @property
    def peak_bytes(self) -> int:
        if self.strategy == "resident":
            return self.forward_bytes + self.backward_extra_bytes
        return self.forward_bytes

    def report(self) -> str:
        lines = [
            f"offload plan: {self.physics} {len(self.shape)}-D "
            f"{'x'.join(map(str, self.shape))} on {self.device}",
            f"  forward set          : {bytes_to_human(self.forward_bytes)}",
            f"  backward extra (RTM) : {bytes_to_human(self.backward_extra_bytes)}",
            f"  device usable        : {bytes_to_human(self.usable_bytes)}",
            f"  strategy             : {self.strategy}",
        ]
        if self.strategy == "resident":
            lines.append(
                "  forward and backward variables coexist; no mid-run swap"
            )
        elif self.strategy == "swap":
            lines.append(
                "  Figure-4 swap required: offload the modeling data (except "
                "the forward wavefield) before uploading the imaging data"
            )
        else:
            lines.append(
                f"  does not fit one card; needs >= {self.min_gpus} cards "
                "under depth-slab decomposition"
            )
        return "\n".join(lines)


def _rtm_sets(physics: str, shape: tuple[int, ...], boundary_width: int):
    inv = field_inventory(physics, shape, boundary_width)
    forward = sum(inv.values())
    field_bytes = int(np.prod(shape)) * 4
    wf = {k: v for k, v in inv.items() if k.startswith("wf:")}
    # backward additions: a second copy of the wavefields + the image
    backward_extra = sum(wf.values()) + field_bytes
    # what the swap frees: the forward wavefields except the primary
    primary = max(wf.values()) if wf else 0
    freed_by_swap = sum(wf.values()) - primary
    return forward, backward_extra, freed_by_swap


def plan_offload(
    physics: str,
    shape: tuple[int, ...],
    spec: GPUSpec,
    boundary_width: int = 16,
    rtm: bool = True,
) -> OffloadPlan:
    """Plan the device residency of one case (modeling, or full RTM)."""
    if len(shape) not in (2, 3):
        raise ConfigurationError(f"bad shape {shape}")
    forward, backward_extra, freed = _rtm_sets(physics, shape, boundary_width)
    usable = DeviceMemory(spec.memory_bytes).usable
    if not rtm:
        backward_extra = 0
    if forward + backward_extra <= usable:
        strategy = "resident"
    elif forward <= usable and (forward - freed) + backward_extra <= usable:
        strategy = "swap"
    else:
        strategy = "multi-gpu"
    # minimum card count for the forward set under depth slabs (halo-padded
    # slabs shrink roughly linearly; use the dominant full-field terms)
    min_gpus = 1
    if strategy == "multi-gpu":
        n0 = shape[0]
        for n in range(2, 65):
            slab = (max(n0 // n, 1),) + tuple(shape[1:])
            inv = field_inventory(physics, slab, min(boundary_width, max(slab[0] // 2 - 1, 0) or 1))
            fwd_slab = sum(inv.values())
            if fwd_slab <= usable:
                min_gpus = n
                break
        else:
            min_gpus = 65
    return OffloadPlan(
        physics=physics.lower(),
        shape=tuple(int(x) for x in shape),
        device=spec.name,
        forward_bytes=forward,
        backward_extra_bytes=backward_extra,
        usable_bytes=usable,
        strategy=strategy,
        min_gpus=min_gpus,
    )
