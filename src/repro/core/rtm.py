"""Reverse Time Migration drivers (both phases of Algorithm 1).

Forward: propagate the source wavefield, recording the seismogram at the
receivers and storing full-field snapshots every ``snap_period``.
Backward: propagate the *receiver* wavefield by injecting the time-reversed
seismogram at the receiver positions, and at every snapshot step apply the
cross-correlation imaging condition against the stored source wavefield.

``run_rtm`` executes the physics; with ``gpu_options`` it also drives the
five-step offload pipeline for modelled timings. ``estimate_rtm`` times the
pipeline alone at paper-scale sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GPUOptions, GpuTimes, RTMConfig, RTMResult
from repro.core.imaging import (
    cross_correlation_update,
    illumination_update,
    mute_shallow,
    normalize_image,
)
from repro.core.modeling import (
    _build_runtime,
    _default_receivers,
    _default_source,
    _strict_check,
)
from repro.core.pipeline import OffloadPipeline, run_pipeline_rtm
from repro.core.platform import CRAY_K40, Platform
from repro.core.snapshots import SnapshotStore, default_snap_period
from repro.propagators.factory import make_propagator
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError


def run_rtm(
    config: RTMConfig,
    gpu_options: GPUOptions | None = None,
    platform: Platform = CRAY_K40,
    tracer: Tracer | None = None,
) -> RTMResult:
    """Run one-shot RTM; returns the migrated image (normalised + muted)
    and, when ``gpu_options`` is given, the modelled GPU timing."""
    if config.model is None:
        raise ConfigurationError("run_rtm needs an EarthModel")
    physics = config.physics.lower()
    prop_kwargs = {}
    if physics == "isotropic":
        prop_kwargs["pml_variant"] = config.pml_variant

    def build_prop():
        return make_propagator(
            physics,
            config.model,
            dt=config.dt,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            **prop_kwargs,
        )

    fwd = build_prop()
    dt = fwd.dt
    snap_period = (
        config.snap_period
        if config.snap_period is not None
        else default_snap_period(dt, config.peak_freq)
    )
    store = SnapshotStore(snap_period, decimate=1)  # imaging needs full fields
    source = _default_source(config, dt)
    receivers = (
        config.receivers if config.receivers is not None else _default_receivers(config)
    )
    seismogram = np.zeros((config.nt, receivers.count), dtype=np.float32)
    shape = config.model.grid.shape
    illum = np.zeros(shape, dtype=np.float32)

    pipeline: OffloadPipeline | None = None
    if gpu_options is not None:
        _strict_check(
            gpu_options, platform, physics, shape, "rtm",
            receivers.count, config.space_order, config.boundary_width,
            config.pml_variant, nt=config.nt, snap_period=snap_period,
        )
        rt = _build_runtime(gpu_options, platform, tracer)
        pipeline = OffloadPipeline(
            rt,
            physics,
            shape,
            nreceivers=receivers.count,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            options=gpu_options,
            pml_variant=config.pml_variant,
        )
        pipeline.allocate_forward()

    # ------------------------------------------------------------------
    # forward phase
    # ------------------------------------------------------------------
    for n in range(config.nt):
        amp = source.amplitude(n)
        srcs = [(source.index, amp)] if amp != 0.0 else []
        fwd.step(srcs)
        seismogram[n, :] = receivers.record(fwd.snapshot_field())
        if pipeline is not None:
            pipeline.forward_step(inject_source=bool(srcs))
        if store.is_snap_step(n):
            s = fwd.snapshot_field()
            store.save(n, s)
            illumination_update(illum, s)
            if pipeline is not None:
                pipeline.snapshot_to_host(decimate=1)

    # ------------------------------------------------------------------
    # backward phase
    # ------------------------------------------------------------------
    if pipeline is not None:
        pipeline.swap_to_backward()
    bwd = build_prop()
    image = np.zeros(shape, dtype=np.float32)
    scale = np.float32(1.0 / bwd.dt)
    for n in range(config.nt - 1, -1, -1):
        traces = seismogram[n, :]
        bwd.step(())
        # receiver injection: the time-reversed records drive the backward
        # wavefield (inject_pressure reaches the real state fields — the
        # elastic observable is derived, so a plain field write would be
        # lost)
        bwd.inject_pressure(receivers.indices, traces, scale=scale)
        if store.has(n):
            cross_correlation_update(image, store.load(n), bwd.snapshot_field())
            if pipeline is not None:
                pipeline.load_forward_snapshot()
                pipeline.imaging_step()
        if pipeline is not None:
            pipeline.backward_step(inject_receivers=True)

    gpu: GpuTimes | None = None
    if pipeline is not None:
        pipeline.finalize(with_image=pipeline.options.image_on_gpu)
        gpu = pipeline.gpu_times()

    raw = image.copy()
    out = normalize_image(
        image, illum if config.illumination_normalize else None
    )
    mute = (
        config.mute_cells
        if config.mute_cells is not None
        else config.boundary_width + 8
    )
    out = mute_shallow(out, mute)
    return RTMResult(
        image=out,
        raw_image=raw,
        seismogram=seismogram,
        dt=dt,
        gpu=gpu,
        extras={"snap_period": snap_period, "snapshots": store.count},
    )


def run_rtm_gpu(
    config: RTMConfig,
    gpu_options: GPUOptions | None = None,
    platform: Platform = CRAY_K40,
) -> RTMResult:
    """RTM with the GPU pipeline attached (convenience wrapper)."""
    return run_rtm(config, gpu_options=gpu_options or GPUOptions(), platform=platform)


def estimate_rtm(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    nreceivers: int = 128,
    space_order: int = 8,
    boundary_width: int = 16,
    pml_variant: str = "branchy",
    tracer: Tracer | None = None,
) -> GpuTimes:
    """Timing-only RTM run at arbitrary (paper-scale) grid sizes."""
    options = options if options is not None else GPUOptions()
    _strict_check(
        options, platform, physics, shape, "rtm",
        nreceivers, space_order, boundary_width, pml_variant,
        nt=nt, snap_period=snap_period,
    )
    rt = _build_runtime(options, platform, tracer)
    pipeline = OffloadPipeline(
        rt,
        physics,
        shape,
        nreceivers=nreceivers,
        space_order=space_order,
        boundary_width=boundary_width,
        options=options,
        pml_variant=pml_variant,
    )
    return run_pipeline_rtm(pipeline, nt, snap_period)
