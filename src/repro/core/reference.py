"""CPU reference times — the paper's full-socket MPI baseline.

"The reference CPU total time is the time to process the entire domain while
using sub-domain decomposition"; the kernel time excludes communication and
snapshot traffic. For RTM the kernel time "compromises both the forward and
backward propagation kernels", for modeling the forward kernel only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import CartesianDecomposition
from repro.grid.grid import Grid
from repro.mpisim.cluster import ClusterCostModel, ClusterSpec
from repro.propagators.workloads import workloads_for
from repro.utils.errors import ConfigurationError

#: wavefields exchanged per halo swap, per formulation and dimension
_EXCHANGED_FIELDS = {
    ("isotropic", 2): 1,
    ("isotropic", 3): 1,
    ("acoustic", 2): 3,
    ("acoustic", 3): 4,
    ("elastic", 2): 5,
    ("elastic", 3): 9,
}


@dataclass(frozen=True)
class ReferenceTimes:
    """CPU reference: total (with communication + snapshot traffic) and
    kernel-only seconds."""

    total: float
    kernel: float


def _halo_geometry(
    shape: tuple[int, ...], nranks: int, halo: int
) -> tuple[int, int]:
    """(bytes, messages) of one single-field halo swap across the
    decomposition."""
    grid = Grid(shape, spacing=10.0)
    decomp = CartesianDecomposition(grid, nranks, halo=halo)
    total_bytes = sum(decomp.face_bytes(r) for r in range(decomp.nranks))
    messages = sum(
        len(decomp.subdomain(r).halo.exchange_faces()) for r in range(decomp.nranks)
    )
    return total_bytes, messages


def cpu_modeling_time(
    cluster: ClusterSpec,
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    space_order: int = 8,
    snapshot_decimate: int = 4,
    pml_variant: str = "branchy",
) -> ReferenceTimes:
    """Full-socket MPI modeling reference."""
    if nt < 1 or snap_period < 1:
        raise ConfigurationError("nt and snap_period must be >= 1")
    model = ClusterCostModel(cluster)
    kw = {"variant": pml_variant} if physics == "isotropic" else {}
    workloads = workloads_for(physics, shape, space_order, **kw)
    step = model.step_time(workloads)
    nfields = _EXCHANGED_FIELDS[(physics.lower(), len(shape))]
    halo_bytes, messages = _halo_geometry(shape, cluster.mpi_cores, space_order // 2)
    halo = model.halo_time(halo_bytes * nfields, messages * nfields)
    inject = model.injection_time(1)
    field_bytes = int(np.prod(shape)) * 4
    snap_bytes = field_bytes // (snapshot_decimate ** len(shape))
    nsnaps = nt // snap_period
    kernel = nt * step
    total = nt * (step + halo + inject) + nsnaps * model.snapshot_time(snap_bytes)
    return ReferenceTimes(total=total, kernel=kernel)


def cpu_rtm_time(
    cluster: ClusterSpec,
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    nreceivers: int = 128,
    space_order: int = 8,
    pml_variant: str = "branchy",
) -> ReferenceTimes:
    """Full-socket MPI RTM reference: forward + backward kernels, full-field
    snapshot spill in the forward phase and reload in the backward phase
    (the interconnect/storage-bound traffic that dominates on the old IBM
    cluster), imaging sweeps, receiver injection."""
    if nt < 1 or snap_period < 1:
        raise ConfigurationError("nt and snap_period must be >= 1")
    model = ClusterCostModel(cluster)
    kw = {"variant": pml_variant} if physics == "isotropic" else {}
    workloads = workloads_for(physics, shape, space_order, **kw)
    step = model.step_time(workloads)
    nfields = _EXCHANGED_FIELDS[(physics.lower(), len(shape))]
    halo_bytes, messages = _halo_geometry(shape, cluster.mpi_cores, space_order // 2)
    halo = model.halo_time(halo_bytes * nfields, messages * nfields)
    inject = model.injection_time(1)
    rcv_inject = model.injection_time(nreceivers)
    field_bytes = int(np.prod(shape)) * 4
    nsnaps = nt // snap_period
    # imaging: one fused multiply-add sweep over S, R, I per snapshot
    imaging_sweep = (3 * field_bytes) / (
        cluster.mem_bandwidth_bytes * 0.8
    )
    # the backward CPU kernels may run degraded relative to the forward
    # ones (see ClusterSpec.rtm_backward_quality)
    bwd_step = step / cluster.backward_quality(physics.lower())
    kernel = nt * (step + bwd_step)
    total = (
        nt * (step + halo + inject)  # forward
        + nsnaps * model.snapshot_time(field_bytes)  # spill S
        + nt * (bwd_step + halo + rcv_inject)  # backward
        + nsnaps * (model.snapshot_time(field_bytes) + imaging_sweep)  # reload + image
    )
    return ReferenceTimes(total=total, kernel=kernel)
