"""Multi-shot surveys: the full imaging condition of the paper's Section 3.2.

The cross-correlation image is "summed over the sources s" — one RTM per
shot, stacked. This module runs a line of shots across the model and stacks
their images (optionally illumination-normalised per shot), which evens out
the single-shot illumination footprint and extends lateral coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import GPUOptions, GpuTimes, RTMConfig
from repro.core.imaging import mute_shallow, normalize_image
from repro.core.platform import CRAY_K40, Platform
from repro.core.modeling import _default_receivers
from repro.core.rtm import estimate_rtm, run_rtm
from repro.model.earth_model import EarthModel
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError


@dataclass
class SurveyResult:
    """Stacked multi-shot migration output."""

    image: np.ndarray
    shot_images: list[np.ndarray]
    shot_x_indices: list[int]
    gpu: list[GpuTimes] = field(default_factory=list)

    @property
    def nshots(self) -> int:
        return len(self.shot_images)


def shot_line(
    model: EarthModel, nshots: int, margin: int = 24
) -> list[int]:
    """Evenly spaced shot x-indices across the model (inside ``margin``)."""
    nx = model.grid.shape[1]
    if nshots < 1:
        raise ConfigurationError("nshots must be >= 1")
    if 2 * margin >= nx:
        raise ConfigurationError("margin leaves no room for shots")
    return [int(x) for x in np.linspace(margin, nx - 1 - margin, nshots)]


def run_survey(
    config: RTMConfig,
    shot_x_indices: Sequence[int] | None = None,
    nshots: int = 3,
    gpu_options: GPUOptions | None = None,
    platform: Platform = CRAY_K40,
    tracer: Tracer | None = None,
) -> SurveyResult:
    """Migrate ``nshots`` shots and stack the raw images.

    ``config.model`` and acquisition settings are shared across shots; each
    shot's source is placed at (``config.source_depth_index`` or the
    default depth, shot x-index). The stack is normalised and muted once at
    the end (per-shot normalisation would over-weight poorly illuminated
    shots).

    With ``gpu_options.compiled`` the timing side runs through the
    memoised compiled pipeline (:func:`repro.compile.runner.
    compiled_for_pipeline`): every shot shares one schedule shape, so the
    survey compiles exactly once and the remaining shots are cache hits.
    Physics is unchanged — the propagators never see the pipeline.
    """
    if config.model is None:
        raise ConfigurationError("run_survey needs an EarthModel")
    if config.model.grid.ndim != 2:
        raise ConfigurationError("run_survey currently supports 2-D models")
    xs = (
        list(shot_x_indices)
        if shot_x_indices is not None
        else shot_line(config.model, nshots)
    )
    if not xs:
        raise ConfigurationError("need at least one shot")
    depth = (
        config.source_depth_index
        if config.source_depth_index is not None
        else min(config.boundary_width + 4, config.model.grid.shape[0] - 1)
    )
    stacked = np.zeros(config.model.grid.shape, dtype=np.float32)
    shot_images: list[np.ndarray] = []
    gpu_times: list[GpuTimes] = []
    for x in xs:
        if not 0 <= x < config.model.grid.shape[1]:
            raise ConfigurationError(f"shot x-index {x} outside the grid")
        shot_cfg = RTMConfig(
            physics=config.physics,
            model=config.model,
            nt=config.nt,
            dt=config.dt,
            peak_freq=config.peak_freq,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            snap_period=config.snap_period,
            snapshot_decimate=config.snapshot_decimate,
            receivers=config.receivers,
            source_depth_index=depth,
            pml_variant=config.pml_variant,
            mute_cells=config.mute_cells,
            illumination_normalize=config.illumination_normalize,
        )
        shot_cfg.source_x_index = x
        if gpu_options is not None and gpu_options.compiled:
            # compiled fast path: physics pipeline-free, timing from the
            # memoised compiled schedule (identical across shots — one
            # compilation per survey, cache hits for the rest)
            result = run_rtm(shot_cfg, gpu_options=None, platform=platform)
            nrecv = (
                config.receivers.count
                if config.receivers is not None
                else _default_receivers(shot_cfg).count
            )
            times = estimate_rtm(
                config.physics.lower(),
                config.model.grid.shape,
                config.nt,
                snap_period=result.extras["snap_period"],
                platform=platform,
                options=gpu_options,
                nreceivers=nrecv,
                space_order=config.space_order,
                boundary_width=config.boundary_width,
                pml_variant=config.pml_variant,
                tracer=tracer,
            )
            gpu_times.append(times)
        else:
            result = run_rtm(
                shot_cfg, gpu_options=gpu_options, platform=platform,
                tracer=tracer,
            )
            if result.gpu is not None:
                gpu_times.append(result.gpu)
        shot_images.append(result.raw_image)
        stacked += result.raw_image
    mute = (
        config.mute_cells
        if config.mute_cells is not None
        else config.boundary_width + 8
    )
    image = mute_shallow(normalize_image(stacked), mute)
    return SurveyResult(
        image=image, shot_images=shot_images, shot_x_indices=xs, gpu=gpu_times
    )


