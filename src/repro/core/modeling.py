"""Seismic modeling drivers (the forward phase of Algorithm 1).

``run_modeling`` executes the physics on the host; passing ``gpu_options``
and a ``platform`` additionally drives the Figure-4 offload pipeline so the
run carries modelled GPU timings (numerics are unchanged — the device
executes the same NumPy arrays). ``estimate_modeling`` runs the pipeline
alone for paper-scale grids.
"""

from __future__ import annotations

import numpy as np

from repro.acc.runtime import Runtime
from repro.core.config import GPUOptions, GpuTimes, ModelingConfig, ModelingResult
from repro.core.pipeline import OffloadPipeline, run_pipeline_modeling
from repro.core.platform import CRAY_K40, Platform
from repro.core.snapshots import SnapshotStore, default_snap_period
from repro.gpusim.device import Device
from repro.propagators.factory import make_propagator
from repro.source.acquisition import Receivers, line_receivers
from repro.source.injection import PointSource
from repro.source.wavelets import integrated_ricker, ricker
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError


def _make_wavelet(physics: str, nt: int, dt: float, peak_freq: float) -> np.ndarray:
    """Physics-appropriate source time function: Eq. 2 injects the time
    integral of the wavelet; the others inject it directly."""
    if physics == "acoustic":
        return integrated_ricker(nt, dt, peak_freq)
    return ricker(nt, dt, peak_freq)


def _default_source(config: ModelingConfig, dt: float) -> PointSource:
    grid = config.model.grid
    depth = config.source_depth_index
    if depth is None:
        depth = min(config.boundary_width + 4, grid.shape[0] - 1)
    wavelet = _make_wavelet(config.physics.lower(), config.nt, dt, config.peak_freq)
    src = PointSource.at_center(grid, wavelet, depth_index=depth)
    if config.source_x_index is not None:
        x = int(config.source_x_index)
        if not 0 <= x < grid.shape[1]:
            raise ConfigurationError(f"source_x_index {x} outside the grid")
        idx = list(src.index)
        idx[1] = x
        src = PointSource(tuple(idx), src.wavelet)
    return src


def _default_receivers(config: ModelingConfig) -> Receivers:
    grid = config.model.grid
    depth = min(config.boundary_width + 2, grid.shape[0] - 1)
    return line_receivers(grid, depth, stride=4, margin=config.boundary_width)


def _build_runtime(
    options: GPUOptions, platform: Platform, tracer: Tracer | None = None
) -> Runtime:
    device = Device(
        platform.gpu,
        pcie=platform.pcie,
        toolkit=options.compiler.default_toolkit,
        pinned_host=options.flags.pin,
    )
    return Runtime(
        device, compiler=options.compiler, flags=options.flags, tracer=tracer
    )


def _strict_check(
    options: GPUOptions,
    platform: Platform,
    physics: str,
    shape: tuple[int, ...],
    mode: str,
    nreceivers: int,
    space_order: int,
    boundary_width: int,
    pml_variant: str,
    nt: int = 16,
    snap_period: int = 4,
) -> None:
    """Opt-in strict modes: lint, sanitize and/or statically validate a
    dry-run recording of this configuration's schedule and refuse (raise
    AnalysisError) on error-level findings before the real run starts."""
    if options.strict_lint:
        from repro.analyze.drivers import check_schedule

        check_schedule(
            physics,
            tuple(shape),
            mode,
            options,
            platform,
            nreceivers=nreceivers,
            space_order=space_order,
            boundary_width=boundary_width,
            pml_variant=pml_variant,
        )
    if options.sanitize:
        from repro.sanitize.drivers import check_sanitize

        check_sanitize(
            physics,
            tuple(shape),
            mode,
            options,
            platform,
            space_order=space_order,
            boundary_width=boundary_width,
        )
    if options.strict_validate:
        from repro.analyze.validate_cli import check_validate

        check_validate(
            physics,
            tuple(shape),
            mode,
            options,
            platform,
            nt=nt,
            snap_period=snap_period,
            space_order=space_order,
            boundary_width=boundary_width,
            pml_variant=pml_variant,
        )


def run_modeling(
    config: ModelingConfig,
    gpu_options: GPUOptions | None = None,
    platform: Platform = CRAY_K40,
    tracer: Tracer | None = None,
) -> ModelingResult:
    """Run seismic modeling; returns the seismogram, the snapshot movie and
    (when ``gpu_options`` is given) the modelled GPU timing."""
    if config.model is None:
        raise ConfigurationError("run_modeling needs an EarthModel")
    physics = config.physics.lower()
    prop_kwargs = {}
    if physics == "isotropic":
        prop_kwargs["pml_variant"] = config.pml_variant
    prop = make_propagator(
        physics,
        config.model,
        dt=config.dt,
        space_order=config.space_order,
        boundary_width=config.boundary_width,
        **prop_kwargs,
    )
    dt = prop.dt
    snap_period = (
        config.snap_period
        if config.snap_period is not None
        else default_snap_period(dt, config.peak_freq)
    )
    store = SnapshotStore(snap_period, decimate=config.snapshot_decimate)
    source = _default_source(config, dt)
    receivers = config.receivers if config.receivers is not None else _default_receivers(config)
    seismogram = np.zeros((config.nt, receivers.count), dtype=np.float32)

    pipeline: OffloadPipeline | None = None
    if gpu_options is not None:
        _strict_check(
            gpu_options, platform, physics, config.model.grid.shape,
            "modeling", receivers.count, config.space_order,
            config.boundary_width, config.pml_variant,
            nt=config.nt, snap_period=snap_period,
        )
        rt = _build_runtime(gpu_options, platform, tracer)
        pipeline = OffloadPipeline(
            rt,
            physics,
            config.model.grid.shape,
            nreceivers=receivers.count,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            options=gpu_options,
            pml_variant=config.pml_variant,
        )
        pipeline.allocate_forward()

    for n in range(config.nt):
        amp = source.amplitude(n)
        srcs = [(source.index, amp)] if amp != 0.0 else []
        prop.step(srcs)
        seismogram[n, :] = receivers.record(prop.snapshot_field())
        if pipeline is not None:
            pipeline.forward_step(inject_source=bool(srcs))
        if store.is_snap_step(n):
            store.save(n, prop.snapshot_field())
            if pipeline is not None:
                pipeline.snapshot_to_host(decimate=config.snapshot_decimate)

    gpu: GpuTimes | None = None
    if pipeline is not None:
        pipeline.finalize(with_image=False)
        gpu = pipeline.gpu_times()
    return ModelingResult(
        seismogram=seismogram,
        snapshots=store,
        final_wavefield=prop.snapshot_field().copy(),
        dt=dt,
        gpu=gpu,
    )


def run_modeling_gpu(
    config: ModelingConfig,
    gpu_options: GPUOptions | None = None,
    platform: Platform = CRAY_K40,
) -> ModelingResult:
    """Modeling with the GPU pipeline attached (convenience wrapper)."""
    return run_modeling(
        config, gpu_options=gpu_options or GPUOptions(), platform=platform
    )


def estimate_modeling(
    physics: str,
    shape: tuple[int, ...],
    nt: int,
    snap_period: int,
    platform: Platform = CRAY_K40,
    options: GPUOptions | None = None,
    nreceivers: int = 128,
    space_order: int = 8,
    boundary_width: int = 16,
    pml_variant: str = "branchy",
    snapshot_decimate: int = 4,
    tracer: Tracer | None = None,
) -> GpuTimes:
    """Timing-only modeling run at arbitrary (paper-scale) grid sizes."""
    options = options if options is not None else GPUOptions()
    _strict_check(
        options, platform, physics, shape, "modeling",
        nreceivers, space_order, boundary_width, pml_variant,
        nt=nt, snap_period=snap_period,
    )
    rt = _build_runtime(options, platform, tracer)
    pipeline = OffloadPipeline(
        rt,
        physics,
        shape,
        nreceivers=nreceivers,
        space_order=space_order,
        boundary_width=boundary_width,
        options=options,
        pml_variant=pml_variant,
    )
    return run_pipeline_modeling(pipeline, nt, snap_period, snapshot_decimate)
