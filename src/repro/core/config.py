"""Configuration and result dataclasses for the modeling/RTM drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.acc.clauses import CompileFlags
from repro.acc.compiler import CompilerPersona, PGI_14_6
from repro.core.snapshots import SnapshotStore
from repro.gpusim.profiler import ProfileReport
from repro.model.earth_model import EarthModel
from repro.source.acquisition import Receivers
from repro.utils.errors import ConfigurationError


@dataclass
class GPUOptions:
    """Tunable GPU-path choices — the paper's optimization catalogue.

    ``inline_receiver_injection=None`` defers to the compiler persona
    (CRAY inlines, PGI cannot); ``async_kernels=None`` likewise defers to
    the persona's auto-async default.
    """

    compiler: CompilerPersona = PGI_14_6
    flags: CompileFlags = field(default_factory=CompileFlags)
    #: apply the imaging condition on the GPU (paper Figure 15) or the host
    #: (Figure 14)
    image_on_gpu: bool = True
    #: backward phase calls the optimized modeling kernel (the 3x fix of
    #: the paper's Section 5.1 step 4) instead of the original uncoalesced
    #: backward kernel
    reuse_forward_kernel: bool = True
    #: split the fused flow/stress kernels (the paper's Figure 12 fission)
    loop_fission: bool = False
    #: launch kernels on async queues (None -> persona default)
    async_kernels: bool | None = None
    #: fix uncoalesced kernels by on-GPU transposition (Figure 13) instead
    #: of kernel reuse
    transpose_fix: bool = False
    #: force a compute construct ('kernels' | 'parallel'); None uses the
    #: persona's preferred one — the knob behind the paper's Figures 8-9
    construct: str | None = None
    #: explicit loop schedule to pair with a forced construct
    schedule: Any = None
    #: refuse to run when :mod:`repro.analyze` finds error-level problems in
    #: a dry-run recording of this configuration's directive schedule
    strict_lint: bool = False
    #: refuse to run when :mod:`repro.sanitize` finds coherence/ghost/race
    #: hazards in a sanitized dry run of this configuration's schedule
    sanitize: bool = False
    #: refuse to run when the static validators (:mod:`repro.analyze.capacity`
    #: and, for compiled runs, :mod:`repro.compile.validate`) find DF2xx
    #: errors — e.g. a proven device OOM — before any allocation happens
    strict_validate: bool = False
    #: per-kernel schedule overrides from the closed-loop tuner (a
    #: :class:`~repro.optim.autotune.TuningPlan`, or any object exposing
    #: ``entry_for(kernel_name)``); kernels without an entry fall through to
    #: the construct/schedule fields above. Load one with
    #: :func:`repro.optim.autotune.load_plan` and prefer
    #: :func:`repro.optim.autotune.options_with_plan`, which also applies
    #: the plan's global ``maxregcount``/async choices
    plan: Any = None
    #: execute through :mod:`repro.compile`: the schedule is lowered to a
    #: fused, bitwise-verified step function instead of being interpreted
    #: directive-by-directive (estimate-mode drivers only)
    compiled: bool = False


@dataclass
class ModelingConfig:
    """Seismic modeling (forward phase of Algorithm 1)."""

    physics: str
    model: EarthModel
    nt: int
    dt: float | None = None
    peak_freq: float = 10.0
    space_order: int = 8
    boundary_width: int = 16
    #: steps between saved snapshots; None derives from peak_freq
    snap_period: int | None = None
    #: decimation of the display movie the modeling phase saves
    snapshot_decimate: int = 4
    #: receiver spread; None places a line below the absorbing layer
    receivers: Receivers | None = None
    #: source depth index; None puts the source just below the top layer
    source_depth_index: int | None = None
    #: source lateral (x) index; None centres the source (multi-shot
    #: surveys move it along the line)
    source_x_index: int | None = None
    #: isotropic PML code variant (branchy/restructured/everywhere)
    pml_variant: str = "branchy"

    def __post_init__(self):
        if self.nt < 1:
            raise ConfigurationError("nt must be >= 1")
        if self.physics.lower() not in ("isotropic", "acoustic", "elastic", "vti"):
            raise ConfigurationError(f"unknown physics '{self.physics}'")


@dataclass
class RTMConfig(ModelingConfig):
    """Reverse Time Migration (both phases of Algorithm 1)."""

    #: zero the image above this depth index (direct-arrival mute)
    mute_cells: int | None = None
    #: normalise by source illumination
    illumination_normalize: bool = True


@dataclass
class GpuTimes:
    """Modelled GPU execution summary of one run."""

    total: float = 0.0
    kernel: float = 0.0
    h2d: float = 0.0
    d2h: float = 0.0
    alloc: float = 0.0
    launches: int = 0
    success: bool = True
    failure: str | None = None  # 'oom' | 'compiler' | None
    profile: ProfileReport | None = None
    #: per-category cumulative seconds from the device's SimClock (kernel /
    #: h2d / d2h / alloc, plus anything instrumentation charged); unlike the
    #: flat fields above this carries every category the clock saw
    categories: dict[str, float] = field(default_factory=dict)

    @property
    def transfer(self) -> float:
        return self.h2d + self.d2h

    @property
    def other(self) -> float:
        """Wall time not attributed to any category (launch gaps, driver
        overheads, host-side admin)."""
        return max(0.0, self.total - self.kernel - self.transfer - self.alloc)


@dataclass
class ModelingResult:
    """Output of a modeling run."""

    seismogram: np.ndarray | None
    snapshots: SnapshotStore
    final_wavefield: np.ndarray
    dt: float
    gpu: GpuTimes | None = None
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class RTMResult:
    """Output of an RTM run."""

    image: np.ndarray
    raw_image: np.ndarray
    seismogram: np.ndarray
    dt: float
    gpu: GpuTimes | None = None
    extras: dict[str, Any] = field(default_factory=dict)
