"""The five-step OpenACC offload pipeline of the paper's Figure 4.

Drives a :class:`~repro.acc.runtime.Runtime` through:

1. **Data allocation** — ``enter data copyin`` of the forward-phase
   inventory (forward and backward variables cannot coexist on the card).
2. **Forward phase** — per step: compute kernels, source injection, and an
   ``update host`` of the wavefield each ``snap_period`` (a branch prevents
   per-step updates).
3. **Offload forward / upload backward** — free the modeling data *except
   the forward wavefield*, upload the imaging data.
4. **Backward phase** — per snap: ``update device`` reloads the stored
   forward wavefield and the imaging condition runs (on GPU or host); per
   step: backward kernels (optimized modeling kernel, or the original
   uncoalesced one, or transposition-fixed) and receiver injection (one
   inlined kernel under CRAY, one launch per receiver under PGI).
5. **Store image & offload** — ``update host`` of the image, ``exit data``.

The pipeline is physics-free: it moves *names and byte counts* and launches
*workload metadata*, so the same code times the paper's full-size grids
(estimate mode) and accompanies real NumPy runs (execute mode — drivers call
:meth:`forward_step` etc. next to the propagator stepping).
"""

from __future__ import annotations

import numpy as np

from repro.acc.runtime import Runtime
from repro.core.config import GpuTimes, GPUOptions
from repro.core.inventory import field_inventory, primary_wavefield
from repro.observe import runlog
from repro.propagators.base import KernelWorkload
from repro.propagators.workloads import (
    imaging_condition_workloads,
    receiver_injection_workloads,
    source_injection_workload,
    transpose_workloads,
    workloads_for,
)
from repro.utils.errors import ConfigurationError, DeviceOutOfMemoryError


def _mark_uncoalesced(workloads: list[KernelWorkload]) -> list[KernelWorkload]:
    """The original backward-phase kernels: loop-carried dependencies force
    a non-unit-stride inner parallel loop (paper Figure 13)."""
    out = []
    for w in workloads:
        out.append(
            KernelWorkload(
                name=w.name + "_backward_orig",
                points=w.points,
                flops_per_point=w.flops_per_point,
                reads_per_point=w.reads_per_point,
                writes_per_point=w.writes_per_point,
                loop_dims=w.loop_dims,
                address_streams=w.address_streams,
                has_branches=w.has_branches,
                inner_contiguous=False,
                loop_carried=True,
            )
        )
    return out


class OffloadPipeline:
    """One shot's offload schedule on one runtime/device."""

    def __init__(
        self,
        rt: Runtime,
        physics: str,
        shape: tuple[int, ...],
        nreceivers: int = 128,
        space_order: int = 8,
        boundary_width: int = 16,
        options: GPUOptions | None = None,
        pml_variant: str = "branchy",
    ):
        self.rt = rt
        self.physics = physics.lower()
        self.shape = tuple(int(n) for n in shape)
        self.ndim = len(self.shape)
        self.nreceivers = int(nreceivers)
        self.options = options if options is not None else GPUOptions()
        self.boundary_width = boundary_width
        self.space_order = int(space_order)
        self.pml_variant = pml_variant
        self.field_bytes = int(np.prod(self.shape)) * 4
        self.inventory = field_inventory(self.physics, self.shape, boundary_width)
        self.primary = primary_wavefield(self.physics)
        # forward kernels (the optimized modeling path)
        kw = {}
        if self.physics == "isotropic":
            kw["variant"] = pml_variant
            kw["pml_width"] = boundary_width
        elif self.physics == "acoustic":
            kw["fissioned"] = self.options.loop_fission
        self.forward_workloads = workloads_for(
            self.physics, self.shape, space_order, **kw
        )
        # backward kernels
        if self.physics == "isotropic" or self.options.reuse_forward_kernel:
            # "The better optimized kernel, which is used in the modeling
            # phase ... was called instead" (the isotropic kernel is shared
            # between the phases by construction)
            self.backward_workloads = self.forward_workloads
            self.backward_transpose: list[KernelWorkload] = []
        elif self.options.transpose_fix:
            self.backward_workloads = self.forward_workloads
            self.backward_transpose = transpose_workloads(self.shape)
        else:
            self.backward_workloads = _mark_uncoalesced(self.forward_workloads)
            self.backward_transpose = []
        inlined = self.options.compiler.supports_inlining
        self.receiver_workloads = receiver_injection_workloads(
            self.nreceivers, inlined=inlined
        )
        self.source_workload = source_injection_workload(self.ndim)
        self.imaging_workloads = imaging_condition_workloads(self.shape)
        self._present_names: list[str] = []
        self._phase = "idle"

    @property
    def tracer(self):
        """The runtime's tracer (NULL_TRACER when tracing is off)."""
        return self.rt.tracer

    # ------------------------------------------------------------------
    def _launch(self, workload, present=(), async_=None):
        """Launch under the configured construct (persona-preferred by
        default; forced kernels/parallel for the Figure 8-9 comparisons).

        A :class:`~repro.optim.autotune.TuningPlan` on the options takes
        precedence per kernel: its entry supplies the construct, the loop
        schedule and (when the step runs asynchronously) the queue the tuner
        observed to be best."""
        opts = self.options
        if opts.plan is not None:
            entry = opts.plan.entry_for(workload.name)
            if entry is not None:
                queue = entry.queue if (async_ and entry.queue is not None) else async_
                if entry.construct == "parallel":
                    return self.rt.parallel(
                        workload, present, entry.loop_schedule(), queue
                    )
                return self.rt.kernels(
                    workload, present, entry.loop_schedule(), queue
                )
        if opts.construct is None:
            return self.rt.compute(workload, present=present, async_=async_)
        if opts.construct == "kernels":
            return self.rt.kernels(workload, present, opts.schedule, async_)
        if opts.construct == "parallel":
            return self.rt.parallel(workload, present, opts.schedule, async_)
        raise ConfigurationError(f"unknown construct '{opts.construct}'")

    # ------------------------------------------------------------------
    # step 1: data allocation
    # ------------------------------------------------------------------
    def allocate_forward(self) -> None:
        """``enter data copyin`` of the full forward inventory."""
        if self._phase != "idle":
            raise ConfigurationError(f"allocate_forward in phase '{self._phase}'")
        with self.tracer.span(
            "allocate_forward", track="pipeline", cat="phase",
            fields=len(self.inventory),
        ):
            self.rt.enter_data(copyin=dict(self.inventory))
        self._present_names = list(self.inventory)
        self._phase = "forward"
        runlog.emit("phase", phase="forward", fields=len(self.inventory))

    # ------------------------------------------------------------------
    # step 2: forward phase
    # ------------------------------------------------------------------
    def forward_step(self, inject_source: bool = True) -> None:
        """One forward time step's launches."""
        if self._phase != "forward":
            raise ConfigurationError(f"forward_step in phase '{self._phase}'")
        async_ = self.options.async_kernels
        with self.tracer.span("forward_step", track="pipeline", cat="phase",
                              phase="forward"):
            for w in self.forward_workloads:
                self._launch(w, present=[self.primary], async_=async_)
            if inject_source:
                self._launch(self.source_workload, present=[self.primary],
                             async_=async_)
            if async_ or (async_ is None and self.rt.compiler.auto_async_kernels):
                self.rt.wait()
        runlog.count("pipeline.forward_steps")

    def snapshot_to_host(self, decimate: int = 1) -> None:
        """``update host`` of the wavefield for the snapshot store."""
        nbytes = self.field_bytes // (decimate**self.ndim)
        with self.tracer.span("snapshot_to_host", track="pipeline", cat="phase",
                              bytes=nbytes, decimate=decimate):
            self.rt.update_host(self.primary, nbytes=nbytes)
        self.tracer.metrics.counter("pipeline.snapshot_bytes").add(nbytes)
        self.tracer.metrics.counter("pipeline.snapshots").add()
        runlog.count("pipeline.snapshots")

    # ------------------------------------------------------------------
    # step 3: offload forward, upload backward
    # ------------------------------------------------------------------
    def swap_to_backward(self) -> None:
        """Free the modeling wavefields except the forward one; upload the
        backward wavefields and the image."""
        if self._phase != "forward":
            raise ConfigurationError(f"swap_to_backward in phase '{self._phase}'")
        with self.tracer.span("swap_to_backward", track="pipeline", cat="phase"):
            self._swap_to_backward()
        runlog.emit("phase", phase="backward")

    def _swap_to_backward(self) -> None:
        self.rt.wait()
        drop = [
            n
            for n in self._present_names
            if n.startswith("wf:") and n != self.primary
        ]
        self.rt.exit_data(delete=drop)
        for n in drop:
            self._present_names.remove(n)
        backward = {
            "bwd:" + n.split(":", 1)[1]: b
            for n, b in self.inventory.items()
            if n.startswith("wf:")
        }
        backward["img:image"] = self.field_bytes
        self.rt.enter_data(copyin=backward)
        self._present_names.extend(backward)
        self._phase = "backward"

    # ------------------------------------------------------------------
    # step 4: backward phase
    # ------------------------------------------------------------------
    def load_forward_snapshot(self) -> None:
        """``update device`` of the stored forward wavefield (per snap)."""
        with self.tracer.span("load_forward_snapshot", track="pipeline",
                              cat="phase", bytes=self.field_bytes):
            # the host copy changed (a different snapshot was loaded), so
            # the full-extent refresh is legitimate — tell the analyzer
            self.rt.note_host_write(self.primary)
            self.rt.update_device(self.primary)
        self.tracer.metrics.counter("pipeline.snapshot_bytes").add(self.field_bytes)

    def imaging_step(self) -> None:
        """Apply the imaging condition (per snap): on the GPU as the two
        even/odd kernels, or on the host after pulling both wavefields."""
        with self.tracer.span("imaging_step", track="pipeline", cat="phase",
                              on_gpu=self.options.image_on_gpu):
            if self.options.image_on_gpu:
                for w in self.imaging_workloads:
                    self._launch(w, present=["img:image"])
            else:
                self.rt.update_host(self.primary)
                self.rt.update_host("bwd:" + self.primary.split(":", 1)[1])

    def backward_step(self, inject_receivers: bool = True) -> None:
        """One backward time step's launches."""
        if self._phase != "backward":
            raise ConfigurationError(f"backward_step in phase '{self._phase}'")
        async_ = self.options.async_kernels
        with self.tracer.span("backward_step", track="pipeline", cat="phase",
                              phase="backward"):
            self._backward_step(inject_receivers, async_)
        runlog.count("pipeline.backward_steps")

    def _backward_step(self, inject_receivers, async_) -> None:
        if self.physics == "isotropic":
            # "the isotropic case requires many host-GPU updates within the
            # (enter data/exit data) region to keep the variables consistent
            # on both host and GPU" (paper Section 6.2)
            self.rt.update_host(self.primary)
            bwd = "bwd:" + self.primary.split(":", 1)[1]
            self.rt.note_host_write(bwd)
            self.rt.update_device(bwd)
        for w in self.backward_transpose:
            self._launch(w, async_=async_)
        for w in self.backward_workloads:
            self._launch(w, async_=async_)
        if inject_receivers:
            for w in self.receiver_workloads:
                self._launch(w, async_=async_)
        if async_ or (async_ is None and self.rt.compiler.auto_async_kernels):
            self.rt.wait()

    # ------------------------------------------------------------------
    # step 5: store image and offload
    # ------------------------------------------------------------------
    def finalize(self, with_image: bool) -> None:
        """``update host`` the image, then drop everything from the card."""
        with self.tracer.span("finalize", track="pipeline", cat="phase",
                              with_image=with_image):
            self.rt.wait()
            if with_image and "img:image" in self._present_names:
                self.rt.update_host("img:image")
            self.rt.exit_data(delete=list(self._present_names))
        self._present_names = []
        self._phase = "idle"
        runlog.emit("phase", phase="idle", with_image=with_image)

    # ------------------------------------------------------------------
    # residency teardown / rebuild (repro.resilience)
    # ------------------------------------------------------------------
    def drop_residency(self) -> None:
        """Detach everything currently on the card, without copyout.

        The recovery layer's teardown before a restart or re-plan: the host
        copies are the source of truth, so dropping device residency loses
        nothing. Reads the *runtime's* present table rather than this
        pipeline's phase bookkeeping — a fault can strike mid-directive
        (e.g. OOM halfway through ``enter data``), leaving the table
        partially populated while the phase never advanced.
        """
        with self.tracer.span("drop_residency", track="pipeline", cat="recovery"):
            self.rt.wait()
            names = self.rt.present_names()
            if names:
                self.rt.exit_data(delete=names)
        self._present_names = []
        self._phase = "idle"
        runlog.emit("phase", phase="idle", via="drop_residency")

    def restore_residency(self, phase: str) -> None:
        """Rebuild device residency for ``phase`` ('idle' | 'forward' |
        'backward') after :meth:`drop_residency` — re-uploading the phase's
        inventory from the host (the modelled recovery cost a restart
        pays)."""
        if self._phase != "idle":
            raise ConfigurationError(
                f"restore_residency in phase '{self._phase}' (drop first)"
            )
        if phase == "idle":
            return
        if phase not in ("forward", "backward"):
            raise ConfigurationError(f"unknown phase '{phase}'")
        with self.tracer.span(
            "restore_residency", track="pipeline", cat="recovery", phase=phase,
        ):
            self.allocate_forward()
            if phase == "backward":
                self._swap_to_backward()
        runlog.emit("phase", phase=self._phase, via="restore_residency")

    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        """Current Figure-4 phase: 'idle', 'forward' or 'backward'."""
        return self._phase

    # ------------------------------------------------------------------
    def gpu_times(self) -> GpuTimes:
        """Summarise the device's accumulated modelled time."""
        dev = self.rt.device
        return GpuTimes(
            total=dev.elapsed,
            kernel=dev.times.kernel,
            h2d=dev.times.h2d,
            d2h=dev.times.d2h,
            alloc=dev.times.alloc,
            launches=dev.kernel_launches,
            success=True,
            profile=dev.profiler.report(),
            categories=dict(dev.clock.categories),
        )


def failed_times(reason: str) -> GpuTimes:
    """A GpuTimes marking a failed configuration (OOM / compiler) — the
    paper's ``x`` table entries."""
    return GpuTimes(success=False, failure=reason)


def run_pipeline_modeling(
    pipeline: OffloadPipeline,
    nt: int,
    snap_period: int,
    snapshot_decimate: int = 4,
) -> GpuTimes:
    """Estimate-mode forward run (no physics): the full Figure-4 forward
    schedule for ``nt`` steps."""
    if pipeline.options.compiled:
        from repro.compile.runner import run_pipeline_compiled

        return run_pipeline_compiled(
            pipeline, "modeling", nt, snap_period, snapshot_decimate
        )
    try:
        pipeline.allocate_forward()
    except DeviceOutOfMemoryError:
        return failed_times("oom")
    for n in range(nt):
        pipeline.forward_step()
        if (n + 1) % snap_period == 0:
            pipeline.snapshot_to_host(decimate=snapshot_decimate)
    pipeline.finalize(with_image=False)
    return pipeline.gpu_times()


def run_pipeline_rtm(
    pipeline: OffloadPipeline,
    nt: int,
    snap_period: int,
) -> GpuTimes:
    """Estimate-mode RTM run (no physics): forward with full-field
    snapshots, swap, backward with imaging + receiver injection."""
    compiler = pipeline.options.compiler
    tag = f"{pipeline.physics}-{pipeline.ndim}d-rtm"
    if tag in getattr(compiler, "known_failures", ()):
        return failed_times("compiler")
    if pipeline.options.compiled:
        from repro.compile.runner import run_pipeline_compiled

        return run_pipeline_compiled(
            pipeline, "rtm", nt, snap_period, snapshot_decimate=1
        )
    try:
        pipeline.allocate_forward()
    except DeviceOutOfMemoryError:
        return failed_times("oom")
    for n in range(nt):
        pipeline.forward_step()
        if (n + 1) % snap_period == 0:
            pipeline.snapshot_to_host(decimate=1)  # RTM needs full fields
    try:
        pipeline.swap_to_backward()
    except DeviceOutOfMemoryError:
        return failed_times("oom")
    for n in range(nt - 1, -1, -1):
        if (n + 1) % snap_period == 0:
            pipeline.load_forward_snapshot()
            pipeline.imaging_step()
        pipeline.backward_step()
    pipeline.finalize(with_image=pipeline.options.image_on_gpu)
    return pipeline.gpu_times()
