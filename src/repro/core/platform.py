"""Evaluation platforms: the paper's two cluster+card pairings."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.pcie import PCIE_GEN2_X16, PCIE_GEN3_X16, PCIeModel
from repro.gpusim.specs import K40, M2090, GPUSpec
from repro.mpisim.cluster import CRAY_XC30, IBM_CLUSTER, ClusterSpec
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class Platform:
    """One evaluation platform: host cluster + attached GPU + link."""

    name: str
    cluster: ClusterSpec
    gpu: GPUSpec
    pcie: PCIeModel

    @property
    def mpi_cores(self) -> int:
        """The full-socket reference core count (10 CRAY / 8 IBM)."""
        return self.cluster.mpi_cores


#: Cray XC30 + Tesla K40 (Gen3 link), the newer platform.
CRAY_K40 = Platform("CRAY", CRAY_XC30, K40, PCIE_GEN3_X16)

#: IBM cluster + Tesla M2090 ("dedicated PCIe2x16 per GPU").
IBM_M2090 = Platform("IBM", IBM_CLUSTER, M2090, PCIE_GEN2_X16)

PLATFORMS = {"CRAY": CRAY_K40, "IBM": IBM_M2090}


def platform(name: str) -> Platform:
    try:
        return PLATFORMS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform '{name}'; expected one of {sorted(PLATFORMS)}"
        ) from None
