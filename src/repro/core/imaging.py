"""RTM imaging condition and image post-processing.

The paper uses "the well established imaging condition I(z,x,y) of cross
correlation between the forward propagated source wave-field S and the
backward propagated receiver wave-field R summed over the sources":

.. math:: I(x) = \\sum_s \\sum_t S(x, t) \\, R(x, t)

applied at the snapshot times of the forward phase.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError


def cross_correlation_update(
    image: np.ndarray, source_field: np.ndarray, receiver_field: np.ndarray
) -> None:
    """Accumulate one time level of the cross-correlation imaging condition
    into ``image`` (in place, float32)."""
    if image.shape != source_field.shape or image.shape != receiver_field.shape:
        raise ConfigurationError(
            f"imaging shapes disagree: image {image.shape}, "
            f"S {source_field.shape}, R {receiver_field.shape}"
        )
    image += source_field * receiver_field


def illumination_update(illum: np.ndarray, source_field: np.ndarray) -> None:
    """Accumulate source illumination ``sum_t S^2`` for normalisation."""
    illum += source_field * source_field


def normalize_image(
    image: np.ndarray, illumination: np.ndarray | None = None, eps: float = 1e-3
) -> np.ndarray:
    """Source-normalised image ``I / (illum + eps*max)``; with no
    illumination, scales to unit peak amplitude.

    ``eps`` stabilises the division where illumination vanishes (deep /
    poorly lit zones would otherwise amplify correlation noise into fake
    reflectors)."""
    out = np.asarray(image, dtype=np.float64)
    if illumination is not None:
        if illumination.shape != image.shape:
            raise ConfigurationError("illumination shape mismatch")
        denom = np.asarray(illumination, dtype=np.float64)
        floor = eps * max(float(denom.max()), 1e-300)
        out = out / (denom + floor)
    peak = float(np.max(np.abs(out)))
    if peak > 0:
        out = out / peak
    return out.astype(np.float32)


def mute_shallow(image: np.ndarray, depth_cells: int) -> np.ndarray:
    """Zero the top ``depth_cells`` of the image — removes the strong
    direct-arrival correlation smear around source/receiver depth (standard
    RTM cosmetic mute)."""
    if depth_cells < 0:
        raise ConfigurationError("depth_cells must be >= 0")
    out = image.copy()
    out[:depth_cells] = 0.0
    return out


def laplacian_filter(image: np.ndarray, spacing: tuple[float, ...]) -> np.ndarray:
    """Second-order Laplacian filter of the image — the classic RTM
    low-frequency-artifact suppressor (sharpens reflectors)."""
    from repro.stencil.operators import laplacian

    return laplacian(np.ascontiguousarray(image, dtype=np.float32), spacing, order=2)
