"""Figure 10: elastic 3-D modeling, registers-per-thread sweep.

Paper: "The best number of registers per thread was found to be 64 in all
implemented cases on both Fermi and Kepler GPU cards. This number gives the
required balance between occupancy and number of accessed bytes."
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig10_register_sweep
from repro.bench.report import format_series
from repro.gpusim.specs import CUDA_5_0, M2090
from repro.optim.tuning import best_register_count, register_sweep
from repro.propagators.workloads import elastic_workloads


@pytest.fixture(scope="module")
def points():
    return fig10_register_sweep()


def test_fig10_regenerates(benchmark):
    points = run_once(benchmark, fig10_register_sweep)
    emit(
        "Elastic Modeling 3D (registers per thread, K40)",
        format_series(
            "maxregcount sweep",
            {str(p.maxregcount): p.seconds for p in points},
        ),
    )
    assert len(points) == 5


class TestShape:
    def test_64_is_best(self, points):
        assert best_register_count(points) == 64

    def test_low_counts_spill(self, points):
        by_reg = {p.maxregcount: p for p in points}
        assert by_reg[16].spilled_regs > by_reg[32].spilled_regs > 0
        assert by_reg[64].spilled_regs == 0

    def test_high_counts_lose_occupancy(self, points):
        by_reg = {p.maxregcount: p for p in points}
        assert by_reg[255].occupancy < by_reg[64].occupancy

    def test_penalty_ordering(self, points):
        """Moving away from 64 in either direction costs time; the spill
        side costs more than the occupancy side (the paper's bars)."""
        by_reg = {p.maxregcount: p.seconds for p in points}
        assert by_reg[16] > by_reg[32] > by_reg[64]
        assert by_reg[128] > by_reg[64]
        assert by_reg[32] > by_reg[128]

    def test_64_also_best_on_fermi_2d(self):
        """'on both Fermi and Kepler': the elastic 2-D set on the M2090
        (3-D does not fit that card) agrees. At 2-D register pressure 64 is
        tied with larger counts — it must never lose."""
        pts = register_sweep(
            M2090, elastic_workloads((1024, 1024)),
            candidates=(16, 32, 63), toolkit=CUDA_5_0,
        )
        by_reg = {p.maxregcount: p.seconds for p in pts}
        assert by_reg[63] <= by_reg[32] <= by_reg[16]
