"""Figure 13: transposition for coalescing (acoustic 2-D backward kernel).

Paper: "This technique allows us to gain a 3x speedup compared with the
original code on both GPU cards using PGI and CRAY compilers." Section 5.1
step 4 reports the related fix — reusing the optimized modeling kernel in
the backward phase — as "a 3x performance speedup over the original RTM
code in both acoustic and elastic models".
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import backward_reuse_comparison, fig13_coalescing
from repro.bench.report import format_series


@pytest.fixture(scope="module")
def data():
    return fig13_coalescing()


def test_fig13_regenerates(benchmark):
    data = run_once(benchmark, fig13_coalescing)
    for card, series in data.items():
        emit(f"Acoustic 2D coalescing fix ({card})", format_series(card, series))
    assert set(data) == {"Tesla M2090", "Tesla K40"}


class TestShape:
    @pytest.mark.parametrize("card", ["Tesla M2090", "Tesla K40"])
    def test_transposition_pays_about_3x(self, data, card):
        """'on both GPU cards'."""
        ratio = data[card]["original"] / data[card]["transposed"]
        assert ratio == pytest.approx(3.0, abs=1.0)
        assert ratio > 2.0

    def test_backward_kernel_reuse_speedup(self):
        """Section 5.1 step 4: calling the optimized modeling kernel in the
        backward phase instead of the original uncoalesced one."""
        data = backward_reuse_comparison("acoustic", 2)
        ratio = data["original"] / data["reuse_modeling_kernel"]
        assert ratio > 1.5

    def test_reuse_also_pays_for_elastic(self):
        data = backward_reuse_comparison("elastic", 2)
        assert data["original"] / data["reuse_modeling_kernel"] > 1.5
