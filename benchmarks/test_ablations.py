"""Ablation benchmarks for the design choices DESIGN.md calls out: each of
the paper's data-movement optimizations is toggled off in isolation and
must cost measurable modelled time."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.acc import PGI_14_6, CompileFlags
from repro.core import GPUOptions, estimate_rtm
from repro.core.platform import CRAY_K40
from repro.gpusim import K40
from repro.gpusim.pcie import PCIE_GEN3_X16
from repro.optim import predict_best_launch, vector_length_sweep
from repro.propagators.workloads import acoustic_workloads

SHAPE = (1024, 1024)
NT, SNAP = 300, 10


def _rtm(**opt_kw):
    defaults = dict(compiler=PGI_14_6, flags=CompileFlags(maxregcount=64, pin=True))
    defaults.update(opt_kw)
    return estimate_rtm(
        "acoustic", SHAPE, NT, SNAP, platform=CRAY_K40,
        options=GPUOptions(**defaults), nreceivers=128,
    )


@pytest.fixture(scope="module")
def ablations():
    return {
        "tuned": _rtm(),
        "no_pin": _rtm(flags=CompileFlags(maxregcount=64, pin=False)),
        "no_reuse": _rtm(reuse_forward_kernel=False),
        "transpose_instead": _rtm(reuse_forward_kernel=False, transpose_fix=True),
        "image_on_cpu": _rtm(image_on_gpu=False),
        "no_regclamp": _rtm(flags=CompileFlags(maxregcount=None, pin=True)),
    }


def test_ablations_regenerate(benchmark, ablations):
    res = run_once(benchmark, lambda: {k: v.total for k, v in ablations.items()})
    lines = [f"  {k:<18} {v:8.2f} s" for k, v in res.items()]
    emit(f"RTM ablations, acoustic 2-D {SHAPE} on K40/PGI 14.6", "\n".join(lines))


class TestAblationShape:
    def test_tuned_is_fastest(self, ablations):
        tuned = ablations["tuned"].total
        for name, t in ablations.items():
            assert t.total >= tuned - 1e-9, name

    def test_pinned_memory_pays(self, ablations):
        """The PGI `pin` target option halves transfer time."""
        assert ablations["no_pin"].transfer > 1.5 * ablations["tuned"].transfer

    def test_backward_reuse_biggest_kernel_lever(self, ablations):
        assert ablations["no_reuse"].kernel > 2.0 * ablations["tuned"].kernel

    def test_transpose_fix_recovers_most_of_reuse(self, ablations):
        """The Figure 13 fix lands between the original and the reuse fix."""
        assert (
            ablations["tuned"].total
            <= ablations["transpose_instead"].total
            < ablations["no_reuse"].total
        )

    def test_image_location_tradeoff_small(self, ablations):
        """The paper: imaging on the GPU was 'slightly better' — low-digit
        percent, driven by the saved per-snap host updates."""
        ratio = ablations["image_on_cpu"].total / ablations["tuned"].total
        assert 1.0 <= ratio < 1.25


class TestGhostTransferAblation:
    def test_partial_beats_full_field_exchange(self):
        """'Exchanging only ghost nodes (partial transfers) instead of the
        whole domain ... significantly reduces the amount of data
        exchange' — even with the per-chunk latency of strided faces."""
        full_bytes = 1024 * 1024 * 4
        ghost_bytes = 4 * 1024 * 4
        full = PCIE_GEN3_X16.transfer_time(full_bytes, pinned=True)
        ghost = PCIE_GEN3_X16.transfer_time(ghost_bytes, pinned=True, chunks=4)
        assert ghost < 0.25 * full


class TestPredictiveTuning:
    def test_predicted_launch_never_loses(self, benchmark):
        """The ref-[13] predictive gang/vector tuner: its pick must match
        the exhaustive sweep's best for the acoustic kernels."""
        (p_kernel, q_kernel) = acoustic_workloads((512, 512, 512))

        def run():
            return predict_best_launch(K40, q_kernel)

        cfg, est = run_once(benchmark, run)
        sweep = vector_length_sweep(K40, q_kernel)
        emit(
            "Predictive vector-length tuning (acoustic 3-D flow kernel, K40)",
            "\n".join(
                f"  vector {v:>4}: {e.seconds * 1e3:8.3f} ms"
                for v, e in sweep.items()
            )
            + f"\n  -> picked {cfg.threads_per_block}",
        )
        assert est.seconds == min(e.seconds for e in sweep.values())
