"""Extension benchmark: multi-GPU strong scaling (the paper's Section 7
path forward — multiple GPUs + overlapping communication with compute)."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.core import estimate_multi_gpu_modeling, scaling_study
from repro.core.platform import CRAY_K40, IBM_M2090

SHAPE = (512, 512, 512)
NT, SNAP = 200, 10


@pytest.fixture(scope="module")
def study():
    return scaling_study("acoustic", SHAPE, NT, SNAP, gpu_counts=(1, 2, 4, 8))


def test_scaling_regenerates(benchmark, study):
    res = run_once(
        benchmark,
        lambda: scaling_study("acoustic", SHAPE, NT, SNAP, gpu_counts=(1, 2, 4, 8)),
    )
    base = res[1]
    lines = ["GPUs  total(s)  kernel(s)  comm(s)  speedup  efficiency"]
    for n, t in res.items():
        lines.append(
            f"{n:>4}  {t.total:8.2f}  {t.kernel:9.2f}  {t.comm:7.3f}  "
            f"{t.speedup_vs(base):7.2f}  {t.efficiency_vs(base):10.2f}"
        )
    emit(f"Multi-GPU strong scaling, acoustic 3-D {SHAPE}, K40s", "\n".join(lines))
    assert res[8].success


class TestScalingShape:
    def test_monotone_speedup(self, study):
        base = study[1]
        speedups = [study[n].speedup_vs(base) for n in (2, 4, 8)]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 4.0

    def test_efficiency_bounded(self, study):
        base = study[1]
        for n in (2, 4, 8):
            assert 0.5 < study[n].efficiency_vs(base) <= 1.0 + 1e-9

    def test_overlap_beats_blocking(self, benchmark_off=None):
        on = estimate_multi_gpu_modeling("acoustic", SHAPE, NT, SNAP, 8, overlap=True)
        off = estimate_multi_gpu_modeling("acoustic", SHAPE, NT, SNAP, 8, overlap=False)
        assert on.total < off.total

    def test_elastic_3d_unlocked_by_decomposition(self):
        """The Fermi 'x' cells become runnable with >= 2 cards."""
        one = estimate_multi_gpu_modeling(
            "elastic", (448, 448, 448), 20, 10, 1, platform=IBM_M2090
        )
        two = estimate_multi_gpu_modeling(
            "elastic", (448, 448, 448), 20, 10, 2, platform=IBM_M2090
        )
        assert one.failure == "oom"
        assert two.success
