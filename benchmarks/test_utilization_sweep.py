"""Extension benchmark: GPU utilization and speedup versus problem size.

Generalises the paper's Section 6.2 observation ("The three-dimensional
cases showed better speedup measurements compared with the two-dimensional
cases due to better GPU utilization ... around 70% [2-D] in contrast with
90% [3-D]") into full curves."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench import achieved_bandwidth_sweep, grid_size_sweep
from repro.core.platform import CRAY_K40

SIZES_2D = (128, 256, 512, 1024, 2048)


@pytest.fixture(scope="module")
def speedups():
    return grid_size_sweep(sizes=SIZES_2D, nt=100)


@pytest.fixture(scope="module")
def bandwidths():
    return achieved_bandwidth_sweep(sizes=(64, 128, 256, 512, 1024, 2048, 4096))


def test_sweep_regenerates(benchmark, speedups, bandwidths):
    pts = run_once(benchmark, lambda: grid_size_sweep(sizes=(128, 1024), nt=50))
    lines = ["edge   speedup   GPU total(s)   main-kernel BW (GB/s)"]
    for p in speedups:
        bw = bandwidths.get(int(p.x), 0.0)
        lines.append(
            f"{int(p.x):>4}   {p.speedup:7.2f}   {p.gpu_total:12.2f}   {bw / 1e9:10.1f}"
        )
    emit("Acoustic 2-D modeling speedup vs grid size (K40 vs 10-core socket)",
         "\n".join(lines))
    assert len(pts) == 2


class TestUtilizationShape:
    def test_speedup_monotone_in_size(self, speedups):
        vals = [p.speedup for p in speedups]
        assert vals == sorted(vals)

    def test_small_grids_lose_to_cpu(self, speedups):
        """Tiny 2-D domains cannot feed the GPU — the regime behind the
        paper's weak 2-D numbers."""
        assert speedups[0].speedup < 1.0

    def test_large_grids_win(self, speedups):
        assert speedups[-1].speedup > 1.2

    def test_bandwidth_utilization_ratio(self, bandwidths):
        """Achieved main-kernel bandwidth at 2-D sizes sits at roughly the
        70-90 % utilization contrast the paper reports (small over large)."""
        ratio = bandwidths[256] / bandwidths[4096]
        assert 0.6 < ratio < 1.0
