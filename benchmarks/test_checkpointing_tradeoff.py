"""Extension benchmark: the RTM snapshot-storage/recompute trade-off.

Uses the modelled per-step kernel time of the acoustic 3-D pipeline on the
K40 and the PCIe cost of moving a 512^3 state, sweeping the checkpoint
budget — the decision a production RTM faces when the snapshot volume
exceeds host memory (the same pressure that forced the paper's
forward/backward device-memory swap)."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.core import checkpointed_rtm_cost, plan_checkpoints
from repro.core.platform import CRAY_K40
from repro.gpusim.kernelmodel import LaunchConfig, estimate_kernel_time
from repro.propagators.workloads import acoustic_workloads

SHAPE = (512, 512, 512)
NT, SNAP = 1000, 10
FIELD_BYTES = 512**3 * 4


def _forward_step_seconds():
    cfg = LaunchConfig(maxregcount=64)
    return sum(
        estimate_kernel_time(CRAY_K40.gpu, w, cfg).seconds
        for w in acoustic_workloads(SHAPE)
    )


def sweep():
    step = _forward_step_seconds()
    d2h = CRAY_K40.pcie.transfer_time(FIELD_BYTES, pinned=True)
    out = {}
    for budget in (100, 50, 25, 10, 5, 2):
        out[budget] = checkpointed_rtm_cost(
            step, NT, SNAP, budget, FIELD_BYTES, transfer_seconds_per_state=d2h
        )
    return out


@pytest.fixture(scope="module")
def costs():
    return sweep()


def test_tradeoff_regenerates(benchmark, costs):
    res = run_once(benchmark, sweep)
    lines = ["budget  storage(GB)  time(s)  slowdown"]
    for b, c in res.items():
        lines.append(
            f"{b:>6}  {c.storage_bytes / 1e9:11.2f}  {c.checkpointed_seconds:7.1f}"
            f"  {c.slowdown:8.3f}"
        )
    emit(f"RTM checkpointing sweep, acoustic 3-D {SHAPE}", "\n".join(lines))


class TestTradeoffShape:
    def test_storage_shrinks_with_budget(self, costs):
        storages = [costs[b].storage_bytes for b in (100, 50, 25, 10, 5, 2)]
        assert storages == sorted(storages, reverse=True)

    def test_compute_grows_as_budget_shrinks(self, costs):
        times = [costs[b].checkpointed_seconds for b in (100, 50, 25, 10, 5, 2)]
        assert times == sorted(times)

    def test_full_budget_is_baseline(self, costs):
        assert costs[100].slowdown == pytest.approx(1.0)

    def test_quarter_storage_costs_under_2x(self, costs):
        """The practical sweet spot of single-level checkpointing: a
        quarter of the snapshot storage for under 2x wall time (deeper
        cuts grow quadratically — budget 10 already costs ~3.4x)."""
        c = costs[25]
        assert c.storage_bytes == pytest.approx(0.25 * costs[100].storage_bytes)
        assert c.slowdown < 2.0
        assert costs[10].slowdown > 2.0

    def test_plan_covers_all_states(self):
        plan = plan_checkpoints(NT, SNAP, 10)
        assert plan.nsnaps == 100
        assert plan.stored == 10
