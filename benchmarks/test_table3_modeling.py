"""Regenerate Table 3 (seismic modeling timing and speedups) and assert the
paper's qualitative shape — Section 6.1's narrative."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench import format_speedup_table, table3_rows


@pytest.fixture(scope="module")
def rows(request):
    return table3_rows()


def test_table3_regenerates(benchmark):
    rows = run_once(benchmark, table3_rows)
    emit("Table 3: Seismic modeling timing and speedup measurements",
         format_speedup_table("Table 3 (reproduced)", rows))
    assert len(rows) == 6


class TestTable3Shape:
    def test_elastic_3d_best_speedup(self, rows):
        """'The best speedup (2.7x) was achieved with the elastic model
        since it is the most computationally intensive case.'"""
        by_name = {r.name: r for r in rows}
        ela = by_name["ELASTIC 3D"].cray_pgi.total_speedup
        assert ela == pytest.approx(2.7, abs=0.6)
        for name, row in by_name.items():
            if name != "ELASTIC 3D" and not row.cray_pgi.failed:
                assert row.cray_pgi.total_speedup <= ela + 1e-9

    def test_isotropic_worst_speedup(self, rows):
        """'the isotropic model gave the worst speedup because it is a
        memory-bound application'."""
        by_name = {r.name: r for r in rows}
        for d in ("2D", "3D"):
            iso = by_name[f"ISOTROPIC {d}"].cray_pgi.total_speedup
            aco = by_name[f"ACOUSTIC {d}"].cray_pgi.total_speedup
            ela = by_name[f"ELASTIC {d}"].cray_pgi.total_speedup
            assert iso < aco < ela

    def test_isotropic_3d_speedup_near_paper(self, rows):
        by_name = {r.name: r for r in rows}
        assert by_name["ISOTROPIC 3D"].cray_pgi.total_speedup == pytest.approx(1.3, abs=0.5)

    def test_elastic_3d_oom_on_fermi(self, rows):
        """'The elastic variables could not fit in GPU memory when Fermi
        card was used' — the IBM 'x' cell."""
        by_name = {r.name: r for r in rows}
        assert by_name["ELASTIC 3D"].ibm_pgi.failed
        assert by_name["ELASTIC 3D"].ibm_pgi.failure == "oom"
        # but it runs on the 12 GB K40
        assert not by_name["ELASTIC 3D"].cray_pgi.failed

    def test_kernel_speedup_at_least_total_speedup(self, rows):
        """'Due to avoiding CPU-GPU communication overheads, Kernel speedup
        was better than total speedup in all implementations.'"""
        for row in rows:
            for cell in (row.cray_cray, row.cray_pgi, row.ibm_pgi):
                if not cell.failed:
                    assert cell.kernel_speedup >= cell.total_speedup * 0.9

    def test_acoustic_beats_isotropic_total_speedup(self, rows):
        """Section 6.1: porting acoustic pays off much more than isotropic
        though their CPU implementations are comparable."""
        by_name = {r.name: r for r in rows}
        assert (
            by_name["ACOUSTIC 3D"].cray_pgi.total_speedup
            > 1.3 * by_name["ISOTROPIC 3D"].cray_pgi.total_speedup
        )

    def test_kepler_total_time_beats_fermi_modestly(self, rows):
        """'The total GPU time gained on CRAY with Kepler was slightly
        better than ... IBM with Fermi ... (1.1x-1.5x) still far from the
        optimal capacity'."""
        for row in rows:
            if row.ibm_pgi.failed or row.cray_pgi.failed:
                continue
            ratio = row.ibm_pgi.gpu_total / row.cray_pgi.gpu_total
            assert 0.9 < ratio < 2.6

    def test_all_gpu_times_positive(self, rows):
        for row in rows:
            for cell in (row.cray_cray, row.cray_pgi, row.ibm_pgi):
                if not cell.failed:
                    assert cell.gpu_total > 0
                    assert cell.gpu_kernel > 0
                    assert cell.gpu_kernel <= cell.gpu_total
