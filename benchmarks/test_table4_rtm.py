"""Regenerate Table 4 (RTM timing and speedups) and assert the paper's
qualitative shape — Section 6.2's narrative."""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench import format_speedup_table, table4_rows


@pytest.fixture(scope="module")
def rows(request):
    return table4_rows()


def test_table4_regenerates(benchmark):
    rows = run_once(benchmark, table4_rows)
    emit("Table 4: RTM timing and speedup measurements",
         format_speedup_table("Table 4 (reproduced)", rows))
    assert len(rows) == 6


class TestTable4Shape:
    def test_isotropic_rtm_slower_than_cpu_on_cray(self, rows):
        """'the isotropic case requires many host-GPU updates ... to keep
        the variables consistent' — total speedups below 1 on the CRAY."""
        by_name = {r.name: r for r in rows}
        for d in ("2D", "3D"):
            assert by_name[f"ISOTROPIC {d}"].cray_pgi.total_speedup < 1.0

    def test_isotropic_kernel_speedup_still_near_one(self, rows):
        """The kernels themselves are fine; the transfers are the drag —
        kernel speedup stays around 1 while total collapses."""
        by_name = {r.name: r for r in rows}
        cell = by_name["ISOTROPIC 3D"].cray_pgi
        assert cell.kernel_speedup > 1.2 * cell.total_speedup

    def test_ibm_acoustic_headline(self, rows):
        """The abstract's headline: ~10x acoustic vs ~1.3x isotropic.
        Our model reproduces the direction and most of the magnitude
        (see EXPERIMENTS.md for the recorded deviation)."""
        by_name = {r.name: r for r in rows}
        aco = by_name["ACOUSTIC 3D"].ibm_pgi
        assert aco.total_speedup > 4.0
        assert aco.kernel_speedup > 4.0
        # and the same model on CRAY stays near 1.3x
        assert by_name["ACOUSTIC 3D"].cray_pgi.total_speedup == pytest.approx(1.3, abs=0.7)

    def test_ibm_rtm_speedups_exceed_cray(self, rows):
        """'This justifies the higher speedup rates on IBM, compared with
        CRAY' (the faster Aries-connected CPU reference)."""
        by_name = {r.name: r for r in rows}
        for name in ("ACOUSTIC 2D", "ACOUSTIC 3D"):
            row = by_name[name]
            assert row.ibm_pgi.total_speedup > row.cray_pgi.total_speedup

    def test_elastic_3d_x_cells(self, rows):
        """CRAY compiler cannot build elastic-3D RTM; Fermi cannot hold it;
        PGI on the K40 can run it."""
        by_name = {r.name: r for r in rows}
        row = by_name["ELASTIC 3D"]
        assert row.cray_cray.failed and row.cray_cray.failure == "compiler"
        assert row.ibm_pgi.failed and row.ibm_pgi.failure == "oom"
        assert not row.cray_pgi.failed

    def test_rtm_cray_vs_pgi_receiver_injection(self, rows):
        """'Inlining was successfully processed by the CRAY compiler, but
        could not be processed by the PGI compiler. This justifies the
        improvement of CRAY measurements over PGI in RTM' — per-receiver
        kernel launches drag the PGI 2-D cases."""
        by_name = {r.name: r for r in rows}
        improved = sum(
            1
            for name in ("ISOTROPIC 2D", "ACOUSTIC 2D", "ELASTIC 2D")
            if by_name[name].cray_cray.gpu_total < by_name[name].cray_pgi.gpu_total
        )
        assert improved >= 2

    def test_rtm_totals_exceed_modeling(self, rows):
        """RTM runs both phases + snapshot traffic: total GPU times must
        exceed the corresponding Table 3 modeling times."""
        from repro.bench import table3_rows

        t3 = {r.name: r for r in table3_rows()}
        for row in rows:
            if row.cray_pgi.failed or t3[row.name].cray_pgi.failed:
                continue
            assert row.cray_pgi.gpu_total > t3[row.name].cray_pgi.gpu_total
