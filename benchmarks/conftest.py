"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark runs the regeneration once (``benchmark.pedantic`` with one
round — the harness itself is deterministic), prints the regenerated
artifact, and asserts the paper's qualitative shape.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
