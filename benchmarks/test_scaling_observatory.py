"""The multi-rank scaling observatory over the full seed-case set.

Sweeps every seed case's executed :class:`~repro.core.multigpu
.MultiGpuPipeline` over ranks {1, 2, 4, 8}, reduces each merged trace to
overlap fractions and a critical-path estimate, asserts the cluster
model's qualitative scaling shape, and publishes ``BENCH_scaling.json``
— the artifact of the ROADMAP's multi-GPU scaling-study item.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import emit, run_once
from repro.observe.scaling import (
    DEFAULT_RANKS,
    SCALE_CASES,
    run_scale_sweep,
)

OUT = "BENCH_scaling.json"


def _sweep() -> dict:
    return run_scale_sweep(cases=SCALE_CASES, ranks=DEFAULT_RANKS,
                           mode="rtm", ledger_path=None)


@pytest.fixture(scope="module")
def doc():
    return _sweep()


def test_scaling_regenerates(benchmark):
    doc = run_once(benchmark, _sweep)
    with open(OUT, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    lines = []
    for name, case in doc["cases"].items():
        for p in case["points"]:
            speedup = p["speedup"] if p["speedup"] is not None else 1.0
            lines.append(
                f"  {name:<6} ranks {p['ranks']:>2}: "
                f"{p['step_seconds'] * 1e3:8.4f} ms/step "
                f"speedup {speedup:5.2f} "
                f"comm overlap {100 * p['comm_overlap_fraction']:5.1f}%"
            )
    emit(
        "Multi-rank scaling observatory (executed pipeline, ranks 1-8)",
        "\n".join(lines) + f"\n  wrote {OUT}",
    )
    assert len(doc["cases"]) == len(SCALE_CASES)


class TestShape:
    @pytest.mark.parametrize("name", SCALE_CASES)
    def test_shape_holds(self, doc, name):
        case = doc["cases"][name]
        assert case["shape_ok"], case["violations"]

    @pytest.mark.parametrize("name", SCALE_CASES)
    def test_every_point_carries_per_rank_overlap(self, doc, name):
        for p in doc["cases"][name]["points"]:
            assert len(p["per_rank"]) == p["ranks"]
            for rank in p["per_rank"]:
                assert 0.0 <= rank["comm_overlap_fraction"] <= 1.0
                assert 0.0 <= rank["transfer_overlap_fraction"] <= 1.0

    @pytest.mark.parametrize("name", SCALE_CASES)
    def test_comm_appears_beyond_one_rank(self, doc, name):
        points = {p["ranks"]: p for p in doc["cases"][name]["points"]}
        assert points[1]["comm_s"] == 0.0
        for ranks in (2, 4, 8):
            assert points[ranks]["comm_s"] > 0.0

    def test_overlap_visible_somewhere(self, doc):
        """The observatory must actually observe hidden comm: at least one
        multi-rank point shows a positive comm-overlap fraction."""
        fractions = [
            p["comm_overlap_fraction"]
            for case in doc["cases"].values()
            for p in case["points"]
            if p["ranks"] > 1
        ]
        assert any(f > 0.0 for f in fractions)
