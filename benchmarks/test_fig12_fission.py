"""Figure 12: loop fission of the most intensive acoustic 3-D kernel.

Paper: "A 3x speedup was gained after applying loop fission when this code
was executed on M2090 ... That was not the case though on Kepler card, as
the register per thread count is [larger] with 255 registers per thread."
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig12_fission
from repro.bench.report import format_series


@pytest.fixture(scope="module")
def data():
    return fig12_fission()


def test_fig12_regenerates(benchmark):
    data = run_once(benchmark, fig12_fission)
    for card, series in data.items():
        emit(f"Acoustic 3D loop fission ({card})", format_series(card, series))
    assert set(data) == {"Tesla M2090", "Tesla K40"}


class TestShape:
    def test_fermi_fission_around_3x(self, data):
        ratio = data["Tesla M2090"]["fused"] / data["Tesla M2090"]["fissioned"]
        assert ratio == pytest.approx(3.0, abs=1.0)
        assert ratio > 2.0

    def test_kepler_fission_neutral_or_worse(self, data):
        """255 registers/thread absorb the fused kernel's pressure; fission
        only adds re-reads."""
        ratio = data["Tesla K40"]["fused"] / data["Tesla K40"]["fissioned"]
        assert 0.7 < ratio < 1.3

    def test_mechanism_is_register_spill(self):
        """The fused kernel spills on Fermi and not on Kepler."""
        from repro.bench.workloads import modeling_case
        from repro.gpusim import K40, M2090, LaunchConfig, estimate_kernel_time
        from repro.propagators.workloads import acoustic_workloads

        case = modeling_case("acoustic", 3)
        (fused,) = [w for w in acoustic_workloads(case.shape) if "fused" in w.name]
        cfg = LaunchConfig(maxregcount=64)
        assert estimate_kernel_time(M2090, fused, cfg).spilled_regs > 0
        assert estimate_kernel_time(K40, fused, cfg).spilled_regs == 0
