"""Interpreted vs compiled step time across the full seed-case matrix.

For each of the 12 seed cases (3 physics x 2 dims x {modeling, rtm}) the
fused-kernel compiler lowers the recorded schedule through its verified
opportunities and the compiled step must never be slower than the
interpreter on wall-clock — while staying bitwise-identical (the
``verified`` flag is the compiler's replay gate, asserted per case).
The timings land in ``BENCH_step.json`` next to this file's working
directory.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.workloads import ALL_CASES
from repro.compile import CompileRequest, compile_case, measure_case
from repro.compile.bench import bench_document
from repro.compile.compiler import _default_runtime_factory
from repro.core.config import GPUOptions

NT = 24
SNAP_PERIOD = 4
REPEATS = 3
OUT = "BENCH_step.json"

_CASE_NAMES = [
    f"{case.physics}-{case.ndim}d-{mode}"
    for case in ALL_CASES
    for mode in ("modeling", "rtm")
]


def _compile_all() -> dict[str, dict]:
    cases: dict[str, dict] = {}
    for case in ALL_CASES:
        for mode in ("modeling", "rtm"):
            request = CompileRequest.from_case(
                f"{case.physics}{case.ndim}d", mode, nt=NT
            )
            options = GPUOptions()
            factory = _default_runtime_factory(options, None)
            compiled = compile_case(request, options=options)
            cases[request.name] = measure_case(
                request, compiled, options, factory, repeats=REPEATS
            )
    return bench_document(cases, nt=NT, snap_period=SNAP_PERIOD,
                          repeats=REPEATS)


@pytest.fixture(scope="module")
def results():
    return _compile_all()


def test_step_compile_regenerates(benchmark):
    doc = run_once(benchmark, _compile_all)
    with open(OUT, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    lines = [
        f"  {name:<24} interpreted {r['interpreted_step_s'] * 1e3:7.3f}"
        f" ms/step -> compiled {r['compiled_step_s'] * 1e3:7.3f} ms/step"
        f"  ({r['speedup']:4.2f}x, {r['applied']} rewrites)"
        for name, r in sorted(doc["cases"].items())
    ]
    emit(
        "Compiled vs interpreted step wall-clock (all 12 seed cases)",
        "\n".join(lines) + f"\n  wrote {OUT}",
    )
    assert len(doc["cases"]) == 12


class TestShape:
    @pytest.mark.parametrize("name", _CASE_NAMES)
    def test_never_slower_than_interpreted(self, results, name):
        r = results["cases"][name]
        assert r["compiled_step_s"] <= r["interpreted_step_s"]

    @pytest.mark.parametrize("name", _CASE_NAMES)
    def test_bitwise_verified(self, results, name):
        assert results["cases"][name]["verified"]

    @pytest.mark.parametrize("name", _CASE_NAMES)
    def test_every_case_applies_a_rewrite(self, results, name):
        assert results["cases"][name]["applied"] >= 1

    @pytest.mark.parametrize("name", _CASE_NAMES)
    def test_fewer_launches_per_step(self, results, name):
        launches = results["cases"][name]["launches_per_step"]
        assert launches["compiled"] < launches["interpreted"]


class TestPricing:
    def test_fused_launch_pricing_is_recorded(self):
        compiled = compile_case(
            CompileRequest.from_case("iso2d", "rtm", nt=8)
        )
        fusions = [
            a for a in compiled.applied if a.kind == "fuse-computes"
        ]
        assert fusions
        for a in fusions:
            assert "effective_maxregcount" in a.modelled

    def test_measure_case_round_trips(self):
        request = CompileRequest.from_case("iso2d", "modeling", nt=8)
        options = GPUOptions()
        compiled = compile_case(request, options=options)
        row = measure_case(
            request, compiled, options,
            _default_runtime_factory(options, None), repeats=1,
        )
        assert row["verified"] and row["speedup"] > 0
