"""Figure 11: elastic 2-D async streams.

Paper: "using async with CRAY compiler reduces the execution time by 30%
... The 30% improvement was due to [reduced lag time between kernel
launches]", while "PGI compilers gave a worst performance on both Fermi and
Kepler when async was used".
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig11_async
from repro.bench.report import format_series


@pytest.fixture(scope="module")
def data():
    return fig11_async()


def test_fig11_regenerates(benchmark):
    data = run_once(benchmark, fig11_async)
    emit(
        "Elastic Model 2D async improvement (fraction of sync time saved)",
        format_series("async vs sync", data, unit="(fraction)"),
    )
    assert set(data) == {"CRAY", "PGI"}


class TestShape:
    def test_cray_async_substantial_win(self, data):
        """~30% in the paper; the launch-gap packing regime."""
        assert data["CRAY"] > 0.15

    def test_cray_async_below_kernel_overlap_fantasy(self, data):
        """No SM sharing: the win is bounded by the launch-gap share, far
        from what true kernel overlap would give."""
        assert data["CRAY"] < 0.6

    def test_pgi_async_is_a_regression(self, data):
        assert data["PGI"] < 0.0
