"""Real (wall-clock) throughput of the NumPy propagator kernels.

Unlike the table/figure regenerations (which report *modelled* device
times), these benchmark the package's actual compute substrate — useful for
tracking performance regressions of the NumPy implementation itself.
"""

import numpy as np
import pytest

from repro.model import constant_model
from repro.propagators import make_propagator
from repro.stencil import laplacian, staggered_diff_forward


@pytest.fixture(scope="module")
def field_2d():
    rng = np.random.default_rng(0)
    return np.ascontiguousarray(rng.standard_normal((1024, 1024)).astype(np.float32))


@pytest.fixture(scope="module")
def field_3d():
    rng = np.random.default_rng(0)
    return np.ascontiguousarray(rng.standard_normal((128, 128, 128)).astype(np.float32))


class TestStencilThroughput:
    def test_laplacian_2d(self, benchmark, field_2d):
        out = np.zeros_like(field_2d)
        benchmark(laplacian, field_2d, (10.0, 10.0), 8, out)

    def test_laplacian_3d(self, benchmark, field_3d):
        out = np.zeros_like(field_3d)
        benchmark(laplacian, field_3d, (10.0, 10.0, 10.0), 8, out)

    def test_staggered_forward_2d(self, benchmark, field_2d):
        out = np.zeros_like(field_2d)
        benchmark(staggered_diff_forward, field_2d, 1, 10.0, 8, out)


class TestPropagatorStepThroughput:
    @pytest.mark.parametrize("physics", ["isotropic", "acoustic", "elastic"])
    def test_step_2d(self, benchmark, physics):
        m = constant_model((512, 512), spacing=10.0, vp=2000.0, vs_ratio=0.5)
        p = make_propagator(physics, m, boundary_width=16)
        src = (p.grid.center_index(), 1.0)
        benchmark(p.step, [src])

    def test_acoustic_step_3d(self, benchmark):
        m = constant_model((96, 96, 96), spacing=10.0, vp=2000.0)
        p = make_propagator("acoustic", m, boundary_width=16)
        src = (p.grid.center_index(), 1.0)
        benchmark(p.step, [src])
