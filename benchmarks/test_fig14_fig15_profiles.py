"""Figures 14 and 15: profiler views of the isotropic 2-D RTM on the M2090,
with the imaging condition on the CPU (Fig. 14) and on the GPU (Fig. 15).

Paper profile (Fig. 14): 73.4% main kernel, 26.2% receiver injection
(``sample_put_real_118``), 0.4% source injection; moving the image onto the
GPU (Fig. 15) adds two low-utilization imaging kernels (~1.9% together)
without affecting the main kernel's share.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig14_fig15_profiles


@pytest.fixture(scope="module")
def profiles():
    return fig14_fig15_profiles()


def test_profiles_regenerate(benchmark):
    profiles = run_once(benchmark, fig14_fig15_profiles)
    for label, rep in profiles.items():
        emit(f"Nvidia-profile view ({label}, Isotropic 2D RTM, M2090)", rep.to_text())
    assert set(profiles) == {"image_on_cpu", "image_on_gpu"}


class TestShape:
    def test_main_kernel_dominates(self, profiles):
        for rep in profiles.values():
            assert 0.6 < rep.kernel_share("iso_update") < 0.95

    def test_receiver_injection_share(self, profiles):
        """A visible double-digit-ish share from #receivers launches per
        backward step (26.2% in the paper's profile)."""
        share = profiles["image_on_cpu"].kernel_share("receiver_injection")
        assert 0.05 < share < 0.4

    def test_source_injection_negligible(self, profiles):
        """0.4% in the paper — 'GPU utilization of source injection is
        0.04%, due to lack of computations'."""
        share = profiles["image_on_cpu"].kernel_share("source_injection")
        assert share < 0.02

    def test_imaging_kernels_only_on_gpu_variant(self, profiles):
        assert profiles["image_on_cpu"].kernel_share("imaging_condition") == 0.0
        gpu_share = profiles["image_on_gpu"].kernel_share("imaging_condition")
        assert 0.0 < gpu_share < 0.08

    def test_main_kernel_share_unaffected_by_imaging_location(self, profiles):
        """'GPU utilization of the main kernel ... was almost the same,
        because this kernel is not affected by applying the imaging
        condition.'"""
        a = profiles["image_on_cpu"].kernel_share("iso_update")
        b = profiles["image_on_gpu"].kernel_share("iso_update")
        assert abs(a - b) < 0.05

    def test_image_on_gpu_moves_less_data(self, profiles):
        """The point of porting the imaging condition: no per-snap host
        update of the source + receiver wavefields."""
        assert (
            profiles["image_on_gpu"].memcpy_d2h_bytes
            < profiles["image_on_cpu"].memcpy_d2h_bytes
        )


class TestUtilizationClaim:
    def test_2d_vs_3d_main_kernel_efficiency(self):
        """Section 6.2: '~70% for the most intensive compute kernel [in 2D]
        in contrast with 90% in the 3D cases' — the modelled efficiency of
        the main kernel must be lower in 2-D than 3-D."""
        from repro.gpusim import K40, LaunchConfig, estimate_kernel_time
        from repro.propagators.workloads import acoustic_workloads

        cfg = LaunchConfig(maxregcount=64)
        (k2,) = [w for w in acoustic_workloads((1024, 1024)) if "fused" in w.name]
        (k3,) = [w for w in acoustic_workloads((512, 512, 512)) if "fused" in w.name]
        e2 = estimate_kernel_time(K40, k2, cfg)
        e3 = estimate_kernel_time(K40, k3, cfg)
        ratio = e2.achieved_bandwidth / e3.achieved_bandwidth
        assert ratio == pytest.approx(0.78, abs=0.12)
