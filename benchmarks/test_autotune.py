"""Closed-loop auto-tuning across the full seed-case matrix.

For each of the 12 seed cases (3 physics x 2 dims x {modeling, rtm}) the
tuner probes the default static schedule and its search candidates, and the
winning :class:`~repro.optim.autotune.TuningPlan` must never be slower than
the default on the measured per-step objective. The modelled step times
(simulated seconds) land in ``BENCH_autotune.json`` next to this file's
working directory.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.workloads import ALL_CASES
from repro.optim.autotune import request_for_case, tune_case

BUDGET = 4
OUT = "BENCH_autotune.json"

_CASE_NAMES = [
    f"{case.physics}-{case.ndim}d-{mode}"
    for case in ALL_CASES
    for mode in ("modeling", "rtm")
]


def _tune_all() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for case in ALL_CASES:
        for mode in ("modeling", "rtm"):
            name = f"{case.physics}-{case.ndim}d-{mode}"
            request = request_for_case(
                f"{case.physics}{case.ndim}d", mode=mode
            )
            plan = tune_case(request, budget=BUDGET)
            out[name] = {
                "default_step_seconds": plan.baseline_step_seconds,
                "tuned_step_seconds": plan.tuned_step_seconds,
                "improvement": plan.improvement,
                "maxregcount": plan.maxregcount,
                "async_kernels": plan.async_kernels,
                "probes": plan.probes,
                "mean_abs_model_error": plan.mean_abs_model_error,
            }
    return out


@pytest.fixture(scope="module")
def results():
    return _tune_all()


def test_autotune_regenerates(benchmark):
    results = run_once(benchmark, _tune_all)
    with open(OUT, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    lines = [
        f"  {name:<24} default {r['default_step_seconds'] * 1e3:8.3f} ms/step"
        f" -> tuned {r['tuned_step_seconds'] * 1e3:8.3f} ms/step"
        f"  ({100 * r['improvement']:5.1f}% saved)"
        for name, r in results.items()
    ]
    emit(
        "Auto-tuned vs default schedule (all 12 seed cases)",
        "\n".join(lines) + f"\n  wrote {OUT}",
    )
    assert len(results) == 12


class TestShape:
    @pytest.mark.parametrize("name", _CASE_NAMES)
    def test_never_slower_than_default(self, results, name):
        r = results[name]
        assert r["tuned_step_seconds"] <= r["default_step_seconds"]

    def test_some_case_improves(self, results):
        """The tuner is not a no-op: at least one case must beat the
        default static schedule outright."""
        assert any(r["improvement"] > 0 for r in results.values())

    def test_model_error_recorded(self, results):
        assert all(
            r["mean_abs_model_error"] is not None for r in results.values()
        )
