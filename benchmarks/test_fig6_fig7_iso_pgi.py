"""Figures 6 and 7: ISO 3-D modeling code variants under PGI 14.3 / 14.6.

Paper: removing the PML if-statements (restructured loops, or computing PML
everywhere) "significantly enhances the performance using PGI 14.3 ...
However, PGI 14.6 did not give the same improvement"; PML-everywhere "was
more efficient than the original code with PGI 14.3, but not with 14.6".
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig6_fig7_iso_variants
from repro.bench.report import format_series


@pytest.fixture(scope="module")
def data():
    return fig6_fig7_iso_variants()


def test_fig6_fig7_regenerate(benchmark):
    data = run_once(benchmark, fig6_fig7_iso_variants)
    for compiler, series in data.items():
        emit(f"ISO Modeling 3D ({compiler})", format_series(compiler, series))
    assert set(data) == {"PGI 14.3", "PGI 14.6"}


class TestShape:
    def test_pgi143_restructuring_pays_big(self, data):
        s = data["PGI 14.3"]
        assert s["branchy"] / s["restructured"] > 2.0

    def test_pgi143_everywhere_beats_original(self, data):
        s = data["PGI 14.3"]
        assert s["everywhere"] < s["branchy"]

    def test_pgi146_improvement_vanishes(self, data):
        """Under 14.6/CUDA 5.5 the branchy original is already predicated:
        the rewrite buys a small fraction of the 14.3 win."""
        gain_143 = data["PGI 14.3"]["branchy"] / data["PGI 14.3"]["restructured"]
        gain_146 = data["PGI 14.6"]["branchy"] / data["PGI 14.6"]["restructured"]
        assert gain_146 < 0.5 * gain_143
        assert gain_146 < 1.6

    def test_pgi146_everywhere_not_better(self, data):
        """'it was more efficient than the original ... but not with PGI
        14.6' — the extra flops no longer buy anything."""
        s = data["PGI 14.6"]
        assert s["everywhere"] >= s["branchy"] * 0.95

    def test_branchy_faster_under_146_than_143(self, data):
        assert data["PGI 14.6"]["branchy"] < data["PGI 14.3"]["branchy"]
