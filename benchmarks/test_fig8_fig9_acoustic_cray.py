"""Figures 8 and 9: acoustic 2-D/3-D modeling under the CRAY compiler —
``kernels`` vs ``parallel`` with explicit gang/worker/vector.

Paper: "Using the gang/worker/vector paradigm associated with the parallel
directive gave the best performance" on CRAY.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.bench.figures import fig8_fig9_acoustic_constructs
from repro.bench.report import format_series


@pytest.fixture(scope="module")
def data():
    return fig8_fig9_acoustic_constructs()


def test_fig8_fig9_regenerate(benchmark):
    data = run_once(benchmark, fig8_fig9_acoustic_constructs)
    emit("Acoustic Modeling 2D (CRAY Compiler)", format_series("2D", data["2D"]))
    emit("Acoustic Modeling 3D (CRAY Compiler)", format_series("3D", data["3D"]))
    assert set(data) == {"2D", "3D"}


class TestShape:
    @pytest.mark.parametrize("dim", ["2D", "3D"])
    def test_parallel_beats_kernels(self, data, dim):
        assert data[dim]["parallel"] < data[dim]["kernels"]

    @pytest.mark.parametrize("dim", ["2D", "3D"])
    def test_gap_is_substantial(self, data, dim):
        """The auto-vectorization heuristic picks a non-unit-stride loop:
        the gap reflects the coalescing factor, not noise."""
        assert data[dim]["kernels"] / data[dim]["parallel"] > 1.5

    def test_3d_slower_than_2d(self, data):
        assert data["3D"]["parallel"] > data["2D"]["parallel"]
