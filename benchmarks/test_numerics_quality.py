"""Numerical-quality benchmarks behind the paper's discretisation choices.

Quantifies why production propagators pay for width-8 (8th-order) operators
(paper Section 5: "operators with a 3D stencil width of 8") and why the
staggered-grid first-order systems are trusted at coarse spacing
(Section 3.3: the staggered approach "allows a larger grid size").

Dispersion is measured as the arrival-speed deviation of a coarse-grid run
from a fine-grid (spacing 5 m, order 8) reference of the same physics —
the systematic 2-D waveform lag cancels in the ratio.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.model import constant_model
from repro.propagators import AcousticPropagator, IsotropicPropagator
from repro.source import PointSource, integrated_ricker, ricker

VP = 2000.0
FREQ = 12.0
TRAVEL_S = 0.22
EXTENT_M = 2200.0


def _arrival_ratio(propagator_cls, spacing, order):
    """Measured front speed / nominal speed (parabolic-refined |u| peak)."""
    n = int(2 * EXTENT_M / spacing) + 1
    kwargs = {"with_density": False} if propagator_cls is IsotropicPropagator else {}
    m = constant_model((n, n), spacing=spacing, vp=VP, **kwargs)
    prop = propagator_cls(m, space_order=order, boundary_width=max(order, 8))
    nsteps = int(round(TRAVEL_S / prop.dt))
    wave = integrated_ricker if propagator_cls is AcousticPropagator else ricker
    w = wave(nsteps + 10, prop.dt, FREQ)
    prop.run(nsteps, source=PointSource.at_center(m.grid, w))
    u = prop.snapshot_field()
    c = n // 2
    line = np.abs(u[c, c:]).astype(np.float64)
    k = int(np.argmax(line))
    a, b, cc = line[k - 1], line[k], line[k + 1]
    denom = a - 2 * b + cc
    frac = 0.5 * (a - cc) / denom if denom != 0 else 0.0
    peak_r = (k + frac) * spacing
    t_eff = nsteps * prop.dt - 1.5 / FREQ
    return peak_r / (VP * t_eff)


def dispersion_error(propagator_cls, spacing, order, _ref_cache={}):
    """Relative arrival deviation from the fine-grid reference."""
    key = propagator_cls.__name__
    if key not in _ref_cache:
        _ref_cache[key] = _arrival_ratio(propagator_cls, 5.0, 8)
    ref = _ref_cache[key]
    return abs(_arrival_ratio(propagator_cls, spacing, order) - ref) / ref


@pytest.fixture(scope="module")
def order_sweep():
    # ~5.5 points per minimum wavelength: coarse enough to expose dispersion
    spacing = 12.0
    return {
        order: dispersion_error(IsotropicPropagator, spacing, order)
        for order in (2, 4, 8)
    }


def test_order_sweep_regenerates(benchmark, order_sweep):
    res = run_once(
        benchmark,
        lambda: dispersion_error(IsotropicPropagator, 12.0, 2),
    )
    lines = [
        f"  order {o}: arrival deviation {e * 100:.2f} % of the fine-grid reference"
        for o, e in order_sweep.items()
    ]
    emit("Spatial-order dispersion sweep (isotropic 2-D, ~5.5 ppw)", "\n".join(lines))
    assert res > 0


class TestOrderAccuracy:
    def test_order2_visibly_dispersive(self, order_sweep):
        """Second-order operators lag measurably at ~5.5 ppw; the wide
        operators do not — the reason the paper's codes use width 8."""
        assert order_sweep[2] > 2.0 * order_sweep[8]
        assert order_sweep[2] > 2.0 * order_sweep[4]

    def test_wide_operators_accurate_on_coarse_grid(self, order_sweep):
        assert order_sweep[4] < 0.01
        assert order_sweep[8] < 0.01

    def test_order2_error_magnitude(self, order_sweep):
        assert 0.005 < order_sweep[2] < 0.05


class TestStaggeredCoarseGrid:
    def test_staggered_usable_at_coarse_spacing(self):
        """Section 3.3's practical claim: the staggered system stays
        accurate (arrival within ~2 %) at spacing where the wavelet has
        under 5 points per minimum wavelength."""
        err = dispersion_error(AcousticPropagator, 14.0, 8)
        assert err < 0.02

    def test_staggered_converges_with_refinement(self):
        coarse = dispersion_error(AcousticPropagator, 16.0, 8)
        fine = dispersion_error(AcousticPropagator, 8.0, 8)
        assert fine <= coarse + 0.005
